// Command sweepwork is the distributed-sweep worker: it handshakes with
// a cmd/sweepd coordinator, verifies it computes the same plan
// fingerprint from the served sweep definition, resolves the
// pre-announced datasets — zero generations against a warm -dataset-dir,
// and still zero against an empty private one: datasets missing from
// the local directory are fetched over the wire, CRC-verified on
// receipt and installed atomically — then leases cell ranges, executes
// them through the ordinary facade runners, and streams the JSONL
// observation records back — heartbeating so a live lease never expires
// and a dead worker's lease does.
//
// Wire fetches are peer-to-peer first: each worker with a -dataset-dir
// serves its installed datasets read-only on -peer-addr and announces
// what it holds, and fetches try up to two coordinator-hinted peer
// holders before falling back to the coordinator — so the coordinator
// uplink serves each dataset roughly once per fleet, not once per
// worker. Peers are untrusted: every install re-validates the payload,
// so a corrupt or lying peer costs one retried attempt, nothing more.
// -no-peer opts a worker out of the fabric entirely.
//
// Usage:
//
//	sweepwork -coordinator http://host:port [-name w1] [-parallel N]
//	          [-dataset-dir path] [-plan fingerprint] [-poll 300ms]
//	          [-peer-addr 127.0.0.1:0] [-no-peer]
//
// -plan pins the exact sweep this worker will execute; a coordinator
// serving any other plan is refused. -hold delays each lease's execution
// while heartbeats keep it alive — a failure-injection knob: kill a
// holding worker and its lease dies with it, exercising the
// coordinator's expiry-and-retry path (the CI smoke job does exactly
// that). The worker exits 0 when the coordinator declares the sweep
// done, 1 on errors, 130 on Ctrl-C. Exit 1 also covers a coordinator
// that went away before this worker observed completion (e.g. a stale
// worker outliving sweepd's -linger window) — judge sweep health by the
// coordinator's exit code and output, not by individual workers'.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"destset"
	"destset/internal/distrib"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "", "coordinator base URL (required), e.g. http://127.0.0.1:7607")
		name        = flag.String("name", "", "worker name (default host-pid)")
		parallel    = flag.Int("parallel", 0, "max concurrent cells per lease (0 = all CPUs)")
		dataDir     = flag.String("dataset-dir", "", "persistent on-disk dataset cache shared across the fleet")
		planPin     = flag.String("plan", "", "refuse coordinators serving any other plan fingerprint")
		poll        = flag.Duration("poll", 300*time.Millisecond, "idle wait between lease requests")
		hold        = flag.Duration("hold", 0, "hold each lease this long before running it (failure-injection knob)")
		fetchHold   = flag.Duration("fetch-hold", 0, "hold each dataset wire fetch this long before installing it (failure-injection knob)")
		noPrewarm   = flag.Bool("no-prewarm", false, "skip resolving the coordinator's pre-announced datasets")
		peerAddr    = flag.String("peer-addr", "127.0.0.1:0", "address the read-only peer dataset server listens on (needs -dataset-dir; empty disables serving)")
		noPeer      = flag.Bool("no-peer", false, "opt out of the peer dataset fabric: serve nothing, fetch only from the coordinator")
		quiet       = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "sweepwork: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "sweepwork:", err)
		os.Exit(1)
	}

	if *coordinator == "" {
		fail(fmt.Errorf("-coordinator is required"))
	}
	if *dataDir != "" {
		if err := destset.SetDatasetDir(*dataDir); err != nil {
			fail(err)
		}
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "sweepwork: "+format+"\n", args...)
		}
	}
	stats, err := distrib.RunWorker(ctx, distrib.WorkerConfig{
		URL:          *coordinator,
		Name:         *name,
		Parallelism:  *parallel,
		ExpectPlan:   *planPin,
		PollInterval: *poll,
		Hold:         *hold,
		FetchHold:    *fetchHold,
		NoPrewarm:    *noPrewarm,
		PeerAddr:     *peerAddr,
		NoPeer:       *noPeer,
		Logf:         logf,
	})
	if err != nil {
		fail(err)
	}
	ds := destset.DatasetCacheStats()
	logf("done: %d lease(s), %d cell(s), %d dataset(s) prewarmed, %d fetched (%d bytes, %d from peers), %d peer bytes served, dataset generations %d",
		stats.Leases, stats.Cells, stats.Prewarmed, stats.Fetched, stats.FetchedBytes, stats.FetchedFromPeers,
		stats.PeerServedBytes, ds.Generations)
}
