// Command sweepd is the distributed-sweep coordinator: it loads a sweep
// definition, computes the plan, and serves the internal/distrib
// HTTP/JSON protocol — workers handshake against the plan fingerprint,
// lease cell ranges with deadlines, heartbeat, and stream JSONL
// observation records back; expired or failed leases are re-queued to
// other workers. When every cell is complete the merged observation
// stream — byte-identical to the same sweep run in one process with
// -json -parallel 1 — is written to -o.
//
// Usage:
//
//	sweepd -def sweep.json [-addr host:port] [-o merged.jsonl]
//	sweepd -fig7 [-warm N] [-misses N] [-seed S] [-workloads a,b]
//	       [-protocols ...] [-addr host:port] [-o merged.jsonl]
//	       [-result-dir path]
//
// The sweep comes either from -def (a destset.SweepDef JSON file, trace
// or timing kind) or from one figure flag mirroring the local CLIs:
// -fig5 is cmd/traceeval's Figure 5 trace sweep, -fig7/-fig8 are
// cmd/timing's timing sweeps — with the same -warm/-misses/-seed/
// -workloads/-protocols flags, so the coordinator's plan fingerprint
// matches the local run's and outputs diff byte-identical.
//
// -result-dir attaches a persistent result store: cells the store can
// already serve are pre-marked complete and never leased — a restarted
// sweep resumes warm — and every accepted upload spills back into the
// store. GET /v1/progress reports cache-served vs computed cell counts
// and the store's hit/miss counters.
//
// -dataset-dir names the dataset files the coordinator serves to
// workers fetching over the wire (GET /v1/dataset/{key}): point it at a
// warm directory and serving is a plain file stream; missing files are
// generated and spilled on first fetch. Workers with their own (cold,
// private) -dataset-dir fetch every announced dataset, verify the CRC
// on receipt, and cold-start with zero generations and zero shared
// mounts.
//
// The coordinator also runs the holder directory that makes dataset
// distribution peer-to-peer: workers announce their read-only peer
// dataset servers and installed keys (POST /v1/announce, plus the same
// fields piggybacked on lease and heartbeat bodies), GET
// /v1/holders/{key} answers a shuffled list of live holders, and
// holders vanish from the directory with their leases. Fetches try
// hinted peers before the uplink, so the coordinator serves each
// dataset O(1) times per sweep however many workers join; GET
// /v1/progress reports dataset_bytes_served and peer_hints_served to
// make that visible.
//
// Workers (cmd/sweepwork) find the coordinator at -addr. -chunk sets
// cells per lease, -lease-ttl the heartbeat deadline, -max-attempts the
// retry budget per range. After the output is written the coordinator
// lingers for -linger, still answering "done", so idle workers observe
// completion and exit cleanly.
//
// -state-dir makes the coordinator crash-safe: every lease-table
// transition is appended to a CRC-guarded write-ahead log with periodic
// compacted checkpoints, and accepted uploads are spilled there as
// content-addressed files. A coordinator killed mid-sweep — even with
// kill -9 — restarts over the same -state-dir, replays its state,
// re-adopts completed ranges without re-leasing them, requeues whatever
// was in flight, and produces byte-identical output. Without -state-dir
// the spill directory is a private temp dir and a crash loses progress
// (unless -result-dir caches it).
//
// Ctrl-C cancels the run; the output file is written atomically
// (temp + rename), so an interrupted coordinator leaves no torn file.
// SIGTERM drains instead: the coordinator stops granting leases,
// checkpoints its state, reports progress, and exits 0 so a later
// sweepd over the same -state-dir picks up exactly where it stopped.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"destset"
	"destset/internal/atomicfile"
	"destset/internal/distrib"
	"destset/internal/experiments"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7607", "listen address for the worker protocol")
		defPath     = flag.String("def", "", "sweep definition JSON file (destset.SweepDef)")
		fig5        = flag.Bool("fig5", false, "serve the Figure 5 trace-driven sweep")
		fig7        = flag.Bool("fig7", false, "serve the Figure 7 timing sweep (simple CPU model)")
		fig8        = flag.Bool("fig8", false, "serve the Figure 8 timing sweep (detailed CPU model)")
		warm        = flag.Int("warm", 0, "warmup misses per workload (0 = figure default)")
		misses      = flag.Int("misses", 0, "measured misses per workload (0 = figure default)")
		seed        = flag.Uint64("seed", 1, "workload generation seed")
		workloads   = flag.String("workloads", "", "comma-separated workload subset")
		protocols   = flag.String("protocols", "", "comma-separated protocol subset (timing figures)")
		out         = flag.String("o", "", "merged JSONL output file (default stdout)")
		chunk       = flag.Int("chunk", 1, "plan cells per lease")
		leaseTTL    = flag.Duration("lease-ttl", 30*time.Second, "lease deadline without a heartbeat")
		maxAttempts = flag.Int("max-attempts", 5, "grants per cell range before the sweep fails")
		linger      = flag.Duration("linger", 3*time.Second, "how long to keep answering workers after the output is written")
		resultDir   = flag.String("result-dir", "", "persistent result store: known cells are pre-marked complete, accepted uploads spill back")
		stateDir    = flag.String("state-dir", "", "crash-safe coordinator state: lease WAL, checkpoints and spilled uploads; restart with the same dir to resume")
		dataDir     = flag.String("dataset-dir", "", "dataset files served to workers over GET /v1/dataset/{key}; missing ones are generated and spilled here on first fetch")
		quiet       = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "sweepd: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}

	def, err := loadDef(*defPath, *fig5, *fig7, *fig8, *warm, *misses, *seed, *workloads, *protocols)
	if err != nil {
		fail(err)
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "sweepd: "+format+"\n", args...)
		}
	}
	var results *destset.ResultStore
	if *resultDir != "" {
		if err := destset.SetResultDir(*resultDir); err != nil {
			fail(err)
		}
		results = destset.SharedResults()
	}
	coord, err := distrib.NewCoordinator(distrib.Config{
		Def:         def,
		ChunkSize:   *chunk,
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
		StateDir:    *stateDir,
		DatasetDir:  *dataDir,
		Logf:        logf,
		Results:     results,
	})
	if err != nil {
		fail(err)
	}
	defer coord.Close()

	// SIGTERM drains: stop granting, persist a checkpoint, report where
	// the sweep stands, and exit 0 — a later sweepd over the same
	// -state-dir resumes from exactly this point. Ctrl-C (above) stays
	// the hard cancel.
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM)
	go func() {
		<-term
		coord.Drain()
		if err := coord.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd: drain checkpoint:", err)
		}
		p := coord.Progress()
		if *stateDir != "" {
			fmt.Fprintf(os.Stderr, "sweepd: drained: %d/%d cells done (%d leased, %d pending); resume with -state-dir %s\n",
				p.DoneCells, p.Cells, p.LeasedCells, p.PendingCells, *stateDir)
		} else {
			fmt.Fprintf(os.Stderr, "sweepd: drained: %d/%d cells done (%d leased, %d pending); no -state-dir, progress is not resumable\n",
				p.DoneCells, p.Cells, p.LeasedCells, p.PendingCells)
		}
		coord.Close()
		os.Exit(0)
	}()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	info := coord.Info()
	fmt.Fprintf(os.Stderr, "sweepd: serving plan %s (%s, %d cells in %d ranges) at http://%s\n",
		info.Plan, info.Kind, info.Cells, info.Tasks, l.Addr())
	srv := &http.Server{Handler: distrib.NewHandler(coord)}
	go srv.Serve(l)
	defer srv.Close()

	if err := coord.Wait(ctx); err != nil {
		fail(err)
	}
	if err := writeMerged(coord, *out); err != nil {
		fail(err)
	}
	logf("merged output written to %s; lingering %s for workers to observe completion", outName(*out), *linger)
	select {
	case <-ctx.Done():
	case <-time.After(*linger):
	}
}

func outName(out string) string {
	if out == "" {
		return "stdout"
	}
	return out
}

// loadDef resolves the sweep definition from -def or one figure flag.
func loadDef(defPath string, fig5, fig7, fig8 bool, warm, misses int, seed uint64, workloads, protocols string) (destset.SweepDef, error) {
	selected := 0
	for _, b := range []bool{defPath != "", fig5, fig7, fig8} {
		if b {
			selected++
		}
	}
	if selected != 1 {
		return destset.SweepDef{}, fmt.Errorf("select exactly one sweep: -def file, -fig5, -fig7 or -fig8")
	}
	if defPath != "" {
		raw, err := os.ReadFile(defPath)
		if err != nil {
			return destset.SweepDef{}, err
		}
		var def destset.SweepDef
		if err := json.Unmarshal(raw, &def); err != nil {
			return destset.SweepDef{}, fmt.Errorf("decoding %s: %w", defPath, err)
		}
		return def, def.Validate()
	}
	opt := experiments.DefaultOptions()
	opt.Seed = seed
	if workloads != "" {
		opt.Workloads = strings.Split(workloads, ",")
	}
	if protocols != "" {
		opt.Protocols = strings.Split(protocols, ",")
	}
	if fig5 {
		if warm != 0 {
			opt.WarmMisses = warm
		}
		if misses != 0 {
			opt.Misses = misses
		}
		return experiments.TradeoffSweepDef(opt)
	}
	if warm != 0 {
		opt.TimedWarmMisses = warm
	}
	if misses != 0 {
		opt.TimedMisses = misses
	}
	model := destset.SimpleCPU
	if fig8 {
		model = destset.DetailedCPU
	}
	return experiments.TimingSweepDef(opt, model)
}

// writeMerged writes the merged observation stream: atomically
// (temp + rename, see internal/atomicfile) when out names a file,
// directly when it is stdout.
func writeMerged(coord *distrib.Coordinator, out string) error {
	if out == "" {
		return coord.WriteMerged(os.Stdout)
	}
	return atomicfile.Write(nil, out, func(w io.Writer) error {
		return coord.WriteMerged(w)
	})
}
