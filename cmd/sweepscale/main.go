// Command sweepscale is the autoscaling worker supervisor: it polls a
// cmd/sweepd coordinator's /v1/progress and keeps a fleet of local
// cmd/sweepwork processes sized to the remaining backlog — launching
// immediately when cells pile up, retiring with hysteresis when the
// sweep winds down, and exiting once the coordinator reports the sweep
// done (or failed). A run therefore traces the 0→N→0 worker curve the
// CI smoke job asserts on.
//
// Usage:
//
//	sweepscale -coordinator http://host:port [-min 0] [-max 4]
//	           [-cells-per-worker 4] [-poll 1s] [-scale-down-after 3]
//	           [-worker sweepwork] [--] [worker args...]
//
// Everything after "--" is passed through to each sweepwork process
// verbatim (e.g. -dataset-dir, -parallel, -quiet); sweepscale appends
// -coordinator and a unique -name itself. Workers are retired with an
// interrupt signal and given a grace period before being killed.
// Exits 0 when the sweep completes, 1 on errors, 130 on Ctrl-C.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"time"

	"destset/internal/distrib"
)

func main() {
	var (
		coordinator    = flag.String("coordinator", "", "coordinator base URL (required), e.g. http://127.0.0.1:7607")
		minWorkers     = flag.Int("min", 0, "minimum workers to keep running")
		maxWorkers     = flag.Int("max", 4, "maximum concurrent workers")
		cellsPerWorker = flag.Int("cells-per-worker", 4, "target backlog per worker")
		poll           = flag.Duration("poll", time.Second, "progress polling interval")
		scaleDownAfter = flag.Int("scale-down-after", 3, "consecutive low polls before retiring a surplus worker")
		workerBin      = flag.String("worker", "sweepwork", "worker binary to launch (path or name on $PATH)")
		quiet          = flag.Bool("quiet", false, "suppress scaling decision logging")
	)
	flag.Parse()
	workerArgs := flag.Args() // everything after "--"

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fail := func(err error) {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "sweepscale: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "sweepscale:", err)
		os.Exit(1)
	}
	if *coordinator == "" {
		fail(fmt.Errorf("-coordinator is required"))
	}
	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	launch := func(ctx context.Context, name string) error {
		args := append([]string{}, workerArgs...)
		args = append(args, "-coordinator", *coordinator, "-name", name)
		cmd := exec.CommandContext(ctx, *workerBin, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		// Retire politely: interrupt first so the worker abandons its
		// lease loop cleanly, kill only if it lingers.
		cmd.Cancel = func() error { return cmd.Process.Signal(os.Interrupt) }
		cmd.WaitDelay = 5 * time.Second
		err := cmd.Run()
		if ctx.Err() != nil {
			// A retired worker's exit status (130, or 1 if it raced the
			// coordinator going away) is expected, not an error.
			return nil
		}
		return err
	}

	stats, err := distrib.RunScaler(ctx, distrib.ScaleConfig{
		URL:            *coordinator,
		Poll:           *poll,
		Min:            *minWorkers,
		Max:            *maxWorkers,
		CellsPerWorker: *cellsPerWorker,
		ScaleDownAfter: *scaleDownAfter,
		Launch:         launch,
		Logf:           logf,
	})
	if err != nil {
		fail(err)
	}
	logf("sweepscale: done: %d launched, %d retired, peak %d", stats.Launched, stats.Retired, stats.Peak)
}
