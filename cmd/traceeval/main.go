// Command traceeval runs the paper's §4 trace-driven predictor
// evaluation: Figure 5 (standout predictors on all workloads) and
// Figure 6 (OLTP sensitivity to indexing and predictor size).
//
// Usage:
//
//	traceeval [-warm N] [-misses N] [-seed S] [-workloads a,b] [-parallel N]
//	          [-fig5] [-fig6a] [-fig6b] [-fig6c] [-json]
//	          [-shard i/n] [-dataset-dir path] [-result-dir path]
//	          [-dataset file.dset ...]
//
// Every figure fans its engine × workload sweep over a worker pool (the
// public destset.Runner); -parallel caps the pool.
//
// -json emits per-cell sweep observations as JSON Lines on stdout
// (decodable with destset.ReadObservations) instead of tables. With
// -fig5 alone the stream opens with a shard-manifest record naming the
// sweep plan, which is what -shard builds on: -shard i/n runs only
// shard i of n of the Figure 5 cell index space, so independent
// processes split the sweep and cmd/sweepmerge reassembles their JSONL
// outputs into the exact full run. -shard requires -json -fig5.
//
// -dataset-dir points the shared dataset store at a persistent on-disk
// cache: generated traces (with their coherence annotations) spill
// there and cold processes load them back zero-copy instead of
// regenerating.
//
// -result-dir is the output-side mirror of -dataset-dir: completed
// sweep cells spill to a content-addressed result store and reruns
// serve them from it, computing only cells whose specs changed — the
// JSONL output stays byte-identical to a cold run. A summary line on
// stderr reports how many cells were served vs computed.
//
// -dataset (repeatable) adds a pre-built dataset file — typically
// tracegen -import output — to the Figure 5 sweep as an extra workload.
// It requires -dataset-dir: the file is installed there under its
// content address, which is how every sweep cell (and every shard or
// distributed worker sharing the directory) resolves it.
//
// With no selection flags, everything is printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"destset"
	"destset/internal/experiments"
)

// repeatedFlag collects every occurrence of a repeatable string flag.
type repeatedFlag []string

func (f *repeatedFlag) String() string     { return strings.Join(*f, ",") }
func (f *repeatedFlag) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	var (
		warm      = flag.Int("warm", 300_000, "warmup misses per workload")
		misses    = flag.Int("misses", 300_000, "measured misses per workload")
		seed      = flag.Uint64("seed", 1, "workload generation seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset for fig5 (default all)")
		parallel  = flag.Int("parallel", 0, "max concurrent sweep cells (0 = all CPUs)")
		fig5      = flag.Bool("fig5", false, "print Figure 5 only")
		fig6a     = flag.Bool("fig6a", false, "print Figure 6(a) only")
		fig6b     = flag.Bool("fig6b", false, "print Figure 6(b) only")
		fig6c     = flag.Bool("fig6c", false, "print Figure 6(c) only")
		hybrids   = flag.Bool("hybrids", false, "print the hybrid-style comparison (extension)")
		oracle    = flag.Bool("oracle", false, "print the oracle prediction limit (extension)")
		ablations = flag.Bool("ablations", false, "print predictor design ablations (extension)")
		jsonOut   = flag.Bool("json", false, "emit per-cell sweep observations as JSON Lines instead of tables")
		shardFlag = flag.String("shard", "", "run only shard i/n of the Figure 5 sweep (requires -json -fig5)")
		dataDir   = flag.String("dataset-dir", "", "persistent on-disk dataset cache shared across processes")
		resultDir = flag.String("result-dir", "", "persistent on-disk result cache: completed cells are served from it, only misses compute")
	)
	var extraDatasets repeatedFlag
	flag.Var(&extraDatasets, "dataset", "pre-built dataset file (e.g. tracegen -import output) swept as an extra workload; repeatable, requires -dataset-dir")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := experiments.DefaultOptions()
	opt.Seed = *seed
	opt.WarmMisses = *warm
	opt.Misses = *misses
	opt.Parallelism = *parallel
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}
	all := !*fig5 && !*fig6a && !*fig6b && !*fig6c && !*hybrids && !*oracle && !*ablations

	var sink *destset.JSONLObserver
	if *jsonOut {
		sink = destset.NewJSONLObserver(os.Stdout)
		opt.Observer = sink.Observe
		defer sink.Flush()
	}

	fail := func(err error) {
		if sink != nil {
			sink.Flush()
		}
		fmt.Fprintln(os.Stderr, "traceeval:", err)
		os.Exit(1)
	}

	if *dataDir != "" {
		if err := destset.SetDatasetDir(*dataDir); err != nil {
			fail(err)
		}
	}
	if *resultDir != "" {
		if err := destset.SetResultDir(*resultDir); err != nil {
			fail(err)
		}
	}
	if len(extraDatasets) > 0 {
		extra, err := experiments.LoadExtraDatasets(extraDatasets, *dataDir)
		if err != nil {
			fail(err)
		}
		opt.ExtraWorkloads = extra
	}
	// reportResults summarizes the result store's work split on stderr —
	// "0 computed" is the warm-rerun signature CI pins.
	reportResults := func() {
		if *resultDir == "" {
			return
		}
		st := destset.ResultStoreStats()
		fmt.Fprintf(os.Stderr, "traceeval: result store: %d cells cached (mem %d, disk %d), %d computed\n",
			st.MemHits+st.DiskHits, st.MemHits, st.DiskHits, st.Stores)
	}

	// The manifest-bearing JSONL sweep path: -json -fig5 alone. Sharded
	// runs must take it — a shard holds raw cells, not whole panels —
	// and the unsharded -json -fig5 run takes it too, so the full-run
	// file carries the same manifest and merges byte-compare against
	// sharded ones.
	onlyFig5 := *fig5 && !*fig6a && !*fig6b && !*fig6c && !*hybrids && !*oracle && !*ablations
	if *jsonOut && onlyFig5 {
		shard, shards, err := destset.ParseShard(*shardFlag)
		if err != nil {
			fail(err)
		}
		plan, err := experiments.TradeoffSweepPlan(opt)
		if err != nil {
			fail(err)
		}
		if err := sink.WriteManifest(plan.Manifest(shard, shards)); err != nil {
			fail(err)
		}
		if _, err := experiments.TradeoffSweep(ctx, opt, shard, shards); err != nil {
			fail(err)
		}
		if err := sink.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "traceeval:", err)
			os.Exit(1)
		}
		reportResults()
		return
	}
	if *shardFlag != "" {
		fail(fmt.Errorf("-shard requires -json and -fig5 (alone)"))
	}

	show := func(s string) {
		if !*jsonOut {
			fmt.Println(s)
		}
	}
	if all || *fig5 {
		panels, err := experiments.Figure5(opt)
		if err != nil {
			fail(err)
		}
		show(experiments.FormatTradeoff(
			"Figure 5: standout predictors (8192 entries, 1024B macroblocks)", panels))
	}
	if all || *fig6a {
		pts, err := experiments.Figure6a(opt)
		if err != nil {
			fail(err)
		}
		show(experiments.FormatTradeoffPoints(
			"Figure 6(a): PC vs data-block indexing, unbounded predictors", "oltp", pts))
	}
	if all || *fig6b {
		pts, err := experiments.Figure6b(opt)
		if err != nil {
			fail(err)
		}
		show(experiments.FormatTradeoffPoints(
			"Figure 6(b): macroblock indexing, unbounded predictors", "oltp", pts))
	}
	if all || *fig6c {
		pts, err := experiments.Figure6c(opt)
		if err != nil {
			fail(err)
		}
		show(experiments.FormatTradeoffPoints(
			"Figure 6(c): predictor size and StickySpatial(1) comparison", "oltp", pts))
	}
	if all || *hybrids {
		panels, err := experiments.HybridComparison(opt)
		if err != nil {
			fail(err)
		}
		show(experiments.FormatTradeoff(
			"Extension: multicast snooping vs predictive directory (Acacio-style)", panels))
	}
	if all || *oracle {
		panels, err := experiments.OracleLimit(opt)
		if err != nil {
			fail(err)
		}
		show(experiments.FormatTradeoff(
			"Extension: oracle prediction limit", panels))
	}
	if all || *ablations {
		pts, err := experiments.AblationRollover(opt, []int{4, 16, 32, 128, 1024})
		if err != nil {
			fail(err)
		}
		show(experiments.FormatTradeoffPoints(
			"Ablation: Group rollover (training-down) limit", "oltp", pts))
		pts, err = experiments.AblationAssociativity(opt, []int{1, 2, 4, 8})
		if err != nil {
			fail(err)
		}
		show(experiments.FormatTradeoffPoints(
			"Ablation: predictor table associativity (OwnerGroup, 8192 entries)", "oltp", pts))
		pts, err = experiments.MacroblockSweep(opt, []int{64, 256, 1024, 4096, 16384})
		if err != nil {
			fail(err)
		}
		show(experiments.FormatTradeoffPoints(
			"Ablation: macroblock size sweep (OwnerGroup, unbounded)", "oltp", pts))
	}
	reportResults()
}
