// Command verify model-checks the multicast snooping protocol: it
// exhaustively explores every reachable coherence state of a small system
// under every possible destination-set prediction and checks the safety
// invariants (single-writer/multiple-reader, data-value integrity,
// memory freshness) — the Sorin et al. verification the paper's protocol
// correctness rests on (§4.1).
//
// Usage:
//
//	verify [-nodes N] [-inject bug]
//
// where bug is one of: none (default), no-sharer-inval,
// sufficiency-no-sharers, sufficiency-no-owner, no-writeback.
// Injecting a bug demonstrates the checker finding the violating trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"destset/internal/verify"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 4, "model size (2-4 nodes)")
		inject = flag.String("inject", "none", "protocol bug to inject")
	)
	flag.Parse()

	rules := verify.CorrectRules()
	switch *inject {
	case "none":
	case "no-sharer-inval":
		rules.GETXInvalidatesSharers = false
	case "sufficiency-no-sharers":
		rules.SufficiencyIncludesSharers = false
	case "sufficiency-no-owner":
		rules.SufficiencyIncludesOwner = false
	case "no-writeback":
		rules.DirtyEvictionWritesBack = false
	default:
		fmt.Fprintf(os.Stderr, "verify: unknown bug %q\n", *inject)
		os.Exit(2)
	}

	res, v := verify.Check(*nodes, rules)
	if v != nil {
		fmt.Printf("VIOLATION after exploring %d states / %d transitions:\n  %v\n",
			res.States, res.Transitions, v)
		os.Exit(1)
	}
	fmt.Printf("protocol safe: %d reachable states, %d transitions verified\n",
		res.States, res.Transitions)
	fmt.Println("every destination-set prediction preserves coherence;")
	fmt.Println("predictions affect performance, never correctness.")
}
