// Command verify model-checks the multicast snooping protocol: it
// exhaustively explores every reachable coherence state of a small system
// under every possible destination-set prediction and checks the safety
// invariants (single-writer/multiple-reader, data-value integrity,
// memory freshness) — the Sorin et al. verification the paper's protocol
// correctness rests on (§4.1).
//
// Usage:
//
//	verify [-nodes N] [-inject bug] [-all] [-parallel N]
//
// where bug is one of: none (default), no-sharer-inval,
// sufficiency-no-sharers, sufficiency-no-owner, no-writeback.
// Injecting a bug demonstrates the checker finding the violating trace.
// -all checks the correct protocol and every injectable bug concurrently
// and reports the whole matrix: the correct rules must verify clean and
// every injected bug must be caught.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"destset/internal/sweep"
	"destset/internal/verify"
)

// injections maps bug names to rule mutations; "none" leaves the correct
// rules intact.
var injections = []struct {
	name  string
	apply func(*verify.Rules)
}{
	{"none", func(*verify.Rules) {}},
	{"no-sharer-inval", func(r *verify.Rules) { r.GETXInvalidatesSharers = false }},
	{"sufficiency-no-sharers", func(r *verify.Rules) { r.SufficiencyIncludesSharers = false }},
	{"sufficiency-no-owner", func(r *verify.Rules) { r.SufficiencyIncludesOwner = false }},
	{"no-writeback", func(r *verify.Rules) { r.DirtyEvictionWritesBack = false }},
}

func rulesFor(name string) (verify.Rules, bool) {
	for _, inj := range injections {
		if inj.name == name {
			rules := verify.CorrectRules()
			inj.apply(&rules)
			return rules, true
		}
	}
	return verify.Rules{}, false
}

func main() {
	var (
		nodes    = flag.Int("nodes", 4, "model size (2-4 nodes)")
		inject   = flag.String("inject", "none", "protocol bug to inject")
		all      = flag.Bool("all", false, "check the correct protocol and every injectable bug")
		parallel = flag.Int("parallel", 0, "max concurrent checks with -all (0 = all CPUs)")
	)
	flag.Parse()

	if *all {
		os.Exit(checkAll(*nodes, *parallel))
	}

	rules, ok := rulesFor(*inject)
	if !ok {
		fmt.Fprintf(os.Stderr, "verify: unknown bug %q\n", *inject)
		os.Exit(2)
	}
	res, v := verify.Check(*nodes, rules)
	if v != nil {
		fmt.Printf("VIOLATION after exploring %d states / %d transitions:\n  %v\n",
			res.States, res.Transitions, v)
		os.Exit(1)
	}
	fmt.Printf("protocol safe: %d reachable states, %d transitions verified\n",
		res.States, res.Transitions)
	fmt.Println("every destination-set prediction preserves coherence;")
	fmt.Println("predictions affect performance, never correctness.")
}

// checkAll explores every injection concurrently and prints the matrix.
// It returns the process exit code: 0 only if the correct protocol is
// safe and every injected bug is caught.
func checkAll(nodes, parallel int) int {
	type outcome struct {
		res verify.Result
		v   *verify.Violation
	}
	outcomes := make([]outcome, len(injections))
	err := sweep.ForEach(context.Background(), len(injections), parallel, func(i int) error {
		rules, _ := rulesFor(injections[i].name)
		res, v := verify.Check(nodes, rules)
		outcomes[i] = outcome{res: res, v: v}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		return 1
	}
	exit := 0
	fmt.Printf("%-24s %10s %12s  %s\n", "injection", "states", "transitions", "verdict")
	for i, inj := range injections {
		o := outcomes[i]
		verdict := "SAFE"
		if o.v != nil {
			verdict = "violation caught"
		}
		switch {
		case inj.name == "none" && o.v != nil:
			verdict = "UNEXPECTED VIOLATION: " + o.v.Error()
			exit = 1
		case inj.name != "none" && o.v == nil:
			verdict = "BUG NOT CAUGHT"
			exit = 1
		}
		fmt.Printf("%-24s %10d %12d  %s\n", inj.name, o.res.States, o.res.Transitions, verdict)
	}
	return exit
}
