// Command sweepapi serves sweep results over HTTP, backed by the
// content-addressed result store: predictable queries are answered from
// the cheap tier (cached cells) and the expensive resource (simulation)
// is spent only on true misses — the same latency/bandwidth economics
// the paper studies, applied to the harness itself.
//
// Usage:
//
//	sweepapi [-addr host:port] [-result-dir path] [-dataset-dir path]
//	         [-result-mem bytes] [-parallel N] [-quiet]
//
// Endpoints:
//
//	GET /v1/figure?fig=5|7|8[&warm=N][&misses=N][&seed=S]
//	              [&workloads=a,b][&protocols=x,y]
//	    Maps the figure request onto the same SweepDef the CLIs build
//	    (cmd/traceeval -fig5, cmd/timing -fig7/-fig8 — identical plan
//	    fingerprints), runs it through an embedded runner attached to
//	    the result store, and streams the manifest-headed, plan-ordered
//	    JSONL observation file — byte-identical to the CLI's
//	    -json -parallel 1 output, whatever mix of cached and computed
//	    cells produced it. Cells already in the store are served
//	    without computing; repeated queries cost zero simulations.
//	    X-Cached-Cells / X-Computed-Cells report the split.
//	    Concurrent identical queries (same plan fingerprint) are
//	    deduplicated by a singleflight: one runs, the rest share its
//	    bytes.
//
//	GET /v1/observations?cells=fp1,fp2,...
//	    Looks up individual cells by plan-cell fingerprint (see
//	    SweepPlan / the JSONL shard manifest "cells" list), store-only:
//	    nothing is computed. Returns each found cell's kind and raw
//	    observation records plus the list of missing fingerprints.
//
//	GET /v1/stats
//	    Result-store and dataset-store counters plus query totals —
//	    the hit-ratio dashboard.
//
// -result-dir persists the store across restarts (and shares it with
// cmd/timing/traceeval/sweepd runs pointed at the same directory);
// without it the store is memory-only and warms over the process's
// lifetime. -result-mem caps the resident memory tier (bytes, LRU).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"destset"
	"destset/internal/experiments"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7608", "listen address")
		resultDir = flag.String("result-dir", "", "persistent on-disk result store (empty = memory-only)")
		resultMem = flag.Int64("result-mem", 0, "resident result-store byte limit (0 = unbounded)")
		dataDir   = flag.String("dataset-dir", "", "persistent on-disk dataset cache shared across processes")
		parallel  = flag.Int("parallel", 0, "max concurrent cells per computed query (0 = all CPUs)")
		quiet     = flag.Bool("quiet", false, "suppress request logging")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sweepapi:", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		if err := destset.SetDatasetDir(*dataDir); err != nil {
			fail(err)
		}
	}
	rs := destset.NewResultStore()
	if *resultDir != "" {
		if err := rs.SetDir(*resultDir); err != nil {
			fail(err)
		}
	}
	if *resultMem > 0 {
		rs.SetLimit(*resultMem)
	}

	s := &server{
		ctx:      ctx,
		rs:       rs,
		parallel: *parallel,
		flights:  map[string]*flight{},
		logf: func(format string, args ...any) {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "sweepapi: "+format+"\n", args...)
			}
		},
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "sweepapi: serving at http://%s (result dir %s)\n", l.Addr(), dirName(*resultDir))
	srv := &http.Server{Handler: s.handler()}
	go srv.Serve(l)
	<-ctx.Done()
	srv.Close()
}

func dirName(dir string) string {
	if dir == "" {
		return "<memory only>"
	}
	return dir
}

// server is the query service: a result store, an embedded runner
// budget, and a singleflight table keyed by plan fingerprint.
type server struct {
	ctx      context.Context
	rs       *destset.ResultStore
	parallel int
	logf     func(string, ...any)

	mu      sync.Mutex
	flights map[string]*flight

	// Query counters, served at /v1/stats.
	figureQueries      atomic.Uint64
	observationQueries atomic.Uint64
	cellsCached        atomic.Uint64
	cellsComputed      atomic.Uint64
}

// flight is one in-progress figure computation; concurrent identical
// queries block on done and share the reply.
type flight struct {
	done  chan struct{}
	reply *figureReply
	err   error
}

// figureReply is a completed figure query: the merged JSONL body and
// the cached/computed split that produced it.
type figureReply struct {
	plan     string
	kind     string
	cells    int
	cached   int
	computed int
	body     []byte
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/figure", s.handleFigure)
	mux.HandleFunc("GET /v1/observations", s.handleObservations)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// httpError answers one failed request with a JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// figureDef maps a figure query onto the exact SweepDef the CLIs build
// from the same flags, so the plan fingerprint — and therefore the
// result-store address space — is shared with cmd/traceeval -fig5 and
// cmd/timing -fig7/-fig8 runs.
func figureDef(q map[string]string) (destset.SweepDef, error) {
	opt := experiments.DefaultOptions()
	if v := q["seed"]; v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return destset.SweepDef{}, fmt.Errorf("bad seed %q: %w", v, err)
		}
		opt.Seed = seed
	}
	if v := q["workloads"]; v != "" {
		opt.Workloads = strings.Split(v, ",")
	}
	if v := q["protocols"]; v != "" {
		opt.Protocols = strings.Split(v, ",")
	}
	warm, misses := 0, 0
	for name, dst := range map[string]*int{"warm": &warm, "misses": &misses} {
		if v := q[name]; v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return destset.SweepDef{}, fmt.Errorf("bad %s %q", name, v)
			}
			*dst = n
		}
	}
	switch q["fig"] {
	case "5":
		if warm != 0 {
			opt.WarmMisses = warm
		}
		if misses != 0 {
			opt.Misses = misses
		}
		return experiments.TradeoffSweepDef(opt)
	case "7", "8":
		if warm != 0 {
			opt.TimedWarmMisses = warm
		}
		if misses != 0 {
			opt.TimedMisses = misses
		}
		model := destset.SimpleCPU
		if q["fig"] == "8" {
			model = destset.DetailedCPU
		}
		return experiments.TimingSweepDef(opt, model)
	}
	return destset.SweepDef{}, fmt.Errorf("fig must be 5, 7 or 8 (got %q)", q["fig"])
}

func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	s.figureQueries.Add(1)
	q := map[string]string{}
	for _, k := range []string{"fig", "seed", "warm", "misses", "workloads", "protocols"} {
		q[k] = r.URL.Query().Get(k)
	}
	def, err := figureDef(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	plan, err := def.Plan()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	reply, shared, err := s.figure(def, plan)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.cellsCached.Add(uint64(reply.cached))
	s.cellsComputed.Add(uint64(reply.computed))
	s.logf("figure %s: plan %s, %d cells (%d cached, %d computed, singleflight-shared %t)",
		q["fig"], reply.plan, reply.cells, reply.cached, reply.computed, shared)
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Sweep-Plan", reply.plan)
	h.Set("X-Sweep-Kind", reply.kind)
	h.Set("X-Cells", strconv.Itoa(reply.cells))
	h.Set("X-Cached-Cells", strconv.Itoa(reply.cached))
	h.Set("X-Computed-Cells", strconv.Itoa(reply.computed))
	h.Set("X-Singleflight-Shared", strconv.FormatBool(shared))
	w.Write(reply.body)
}

// figure computes (or joins) one figure query. Queries are
// singleflighted on the plan fingerprint: the first caller runs the
// sweep, concurrent identical callers share its reply, and the entry is
// dropped on completion so later queries consult the store afresh (and
// find every cell cached).
func (s *server) figure(def destset.SweepDef, plan *destset.SweepPlan) (*figureReply, bool, error) {
	key := plan.Fingerprint()
	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		<-f.done
		return f.reply, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	f.reply, f.err = s.runFigure(def, plan)
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
	return f.reply, false, f.err
}

// runFigure executes one figure sweep through an embedded runner
// attached to the result store and renders the merged plan-ordered
// JSONL body. The raw observation stream (whatever order the worker
// pool emitted it in) is reordered through MergeObservations, so the
// response bytes are deterministic at any -parallel and identical to a
// local -json -parallel 1 run.
func (s *server) runFigure(def destset.SweepDef, plan *destset.SweepPlan) (*figureReply, error) {
	cached := 0
	for _, c := range plan.Cells() {
		if s.rs.HasCell(plan.Kind(), c.Fingerprint) {
			cached++
		}
	}
	var raw bytes.Buffer
	sink := destset.NewJSONLObserver(&raw)
	if err := sink.WriteManifest(plan.Manifest(0, 1)); err != nil {
		return nil, err
	}
	opts := []destset.RunnerOption{
		destset.WithResultStore(s.rs),
		destset.WithParallelism(s.parallel),
	}
	switch def.Kind {
	case destset.PlanKindTrace:
		r, err := def.Runner(append(opts, destset.WithObserver(sink.Observe))...)
		if err != nil {
			return nil, err
		}
		if _, err := r.Run(s.ctx); err != nil {
			return nil, err
		}
	case destset.PlanKindTiming:
		r, err := def.TimingRunner(append(opts, destset.WithTimingObserver(sink.ObserveTiming))...)
		if err != nil {
			return nil, err
		}
		if _, err := r.Run(s.ctx); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown sweep kind %q", def.Kind)
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	var body bytes.Buffer
	if err := destset.MergeObservations(&body, bytes.NewReader(raw.Bytes())); err != nil {
		return nil, err
	}
	return &figureReply{
		plan:     plan.Fingerprint(),
		kind:     plan.Kind(),
		cells:    plan.Len(),
		cached:   cached,
		computed: plan.Len() - cached,
		body:     body.Bytes(),
	}, nil
}

// observationsReply is the /v1/observations response body.
type observationsReply struct {
	Cells   map[string]cellReply `json:"cells"`
	Missing []string             `json:"missing,omitempty"`
}

// cellReply is one found cell: its plan kind and raw observation
// records, exactly as a sweep's JSONL output carries them.
type cellReply struct {
	Kind    string            `json:"kind"`
	Records []json.RawMessage `json:"records"`
}

func (s *server) handleObservations(w http.ResponseWriter, r *http.Request) {
	s.observationQueries.Add(1)
	cells := r.URL.Query().Get("cells")
	if cells == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cells parameter required (comma-separated plan-cell fingerprints)"))
		return
	}
	reply := observationsReply{Cells: map[string]cellReply{}}
	for _, fp := range strings.Split(cells, ",") {
		fp = strings.TrimSpace(fp)
		if fp == "" {
			continue
		}
		kind, lines, ok := s.rs.CellRecords(fp)
		if !ok {
			reply.Missing = append(reply.Missing, fp)
			continue
		}
		records := make([]json.RawMessage, len(lines))
		for i, line := range lines {
			records[i] = json.RawMessage(line)
		}
		reply.Cells[fp] = cellReply{Kind: kind, Records: records}
	}
	s.logf("observations: %d found, %d missing", len(reply.Cells), len(reply.Missing))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}

// statsReply is the /v1/stats response body: per-tier store counters
// plus query totals — enough to compute hit ratios.
type statsReply struct {
	Results  destset.ResultStats  `json:"results"`
	Datasets destset.DatasetStats `json:"datasets"`
	Queries  struct {
		Figure        uint64 `json:"figure"`
		Observations  uint64 `json:"observations"`
		CellsCached   uint64 `json:"cells_cached"`
		CellsComputed uint64 `json:"cells_computed"`
	} `json:"queries"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	var reply statsReply
	reply.Results = s.rs.Stats()
	reply.Datasets = destset.DatasetCacheStats()
	reply.Queries.Figure = s.figureQueries.Load()
	reply.Queries.Observations = s.observationQueries.Load()
	reply.Queries.CellsCached = s.cellsCached.Load()
	reply.Queries.CellsComputed = s.cellsComputed.Load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}
