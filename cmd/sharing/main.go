// Command sharing runs the paper's §2 workload characterization and
// prints the Table 2 / Figure 2 / Figure 3 / Figure 4 reproductions.
//
// Usage:
//
//	sharing [-warm N] [-misses N] [-seed S] [-workloads apache,oltp]
//	        [-parallel N] [-table2] [-fig2] [-fig3] [-fig4]
//
// With no selection flags, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"destset/internal/experiments"
)

func main() {
	var (
		warm      = flag.Int("warm", 300_000, "warmup misses per workload")
		misses    = flag.Int("misses", 300_000, "measured misses per workload")
		seed      = flag.Uint64("seed", 1, "workload generation seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default all)")
		parallel  = flag.Int("parallel", 0, "max concurrent workload generations (0 = all CPUs)")
		table2    = flag.Bool("table2", false, "print Table 2 only")
		fig2      = flag.Bool("fig2", false, "print Figure 2 only")
		fig3      = flag.Bool("fig3", false, "print Figure 3 only")
		fig4      = flag.Bool("fig4", false, "print Figure 4 only")
	)
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Seed = *seed
	opt.WarmMisses = *warm
	opt.Misses = *misses
	opt.Parallelism = *parallel
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}

	cs, err := experiments.Characterize(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sharing:", err)
		os.Exit(1)
	}
	all := !*table2 && !*fig2 && !*fig3 && !*fig4
	if all || *table2 {
		fmt.Println(experiments.FormatTable2(cs))
	}
	if all || *fig2 {
		fmt.Println(experiments.FormatFigure2(cs))
	}
	if all || *fig3 {
		fmt.Println(experiments.FormatFigure3(cs))
	}
	if all || *fig4 {
		fmt.Println(experiments.FormatFigure4(cs))
	}
}
