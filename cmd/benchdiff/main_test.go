package main

import (
	"strings"
	"testing"
)

func mkrow(name string, ns, bytes float64) row {
	return row{Name: name, Iters: 1, NsPerOp: ns, Extra: map[string]float64{"B/op": bytes}}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := index([]row{
		mkrow("BenchmarkTable2-16", 100, 1000),
		mkrow("BenchmarkFigure5-16", 200, 2000),
		mkrow("BenchmarkGone-16", 50, 500),
	})
	latest := index([]row{
		mkrow("BenchmarkTable2-4", 115, 1000),  // +15% time: ok at 20%
		mkrow("BenchmarkFigure5-4", 200, 2600), // +30% bytes: fail
		mkrow("BenchmarkNew-4", 10, 10),
	})
	keys := []string{"BenchmarkTable2", "BenchmarkFigure5", "BenchmarkGone", "BenchmarkNew"}
	lines, failed := compare(base, latest, keys, 20, 20)
	if !failed {
		t.Fatalf("expected failure, got:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"FAIL BenchmarkFigure5 B/op",
		"FAIL BenchmarkGone: present in baseline but missing",
		"NEW  BenchmarkNew",
		"ok   BenchmarkTable2 time/op",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := index([]row{mkrow("BenchmarkTable2-16", 100, 1000)})
	latest := index([]row{mkrow("BenchmarkTable2-16", 119, 1150)})
	if _, failed := compare(base, latest, []string{"BenchmarkTable2"}, 20, 20); failed {
		t.Error("within-threshold deltas must pass")
	}
	// Improvements never fail, however large.
	latest = index([]row{mkrow("BenchmarkTable2-16", 1, 1)})
	if _, failed := compare(base, latest, []string{"BenchmarkTable2"}, 20, 20); failed {
		t.Error("improvements must pass")
	}
}

func TestNormalize(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkTable2-16":                "BenchmarkTable2",
		"BenchmarkPredictorPredict/Group-4": "BenchmarkPredictorPredict/Group",
		"BenchmarkNoSuffix":                 "BenchmarkNoSuffix",
		"BenchmarkTricky-name":              "BenchmarkTricky-name",
	} {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchLine(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkTable2-16  \t 2\t 431151258 ns/op\t 54.75 oltp-dir-indirect-%\t 806438392 B/op\t 199694 allocs/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.Name != "BenchmarkTable2-16" || r.Iters != 2 || r.NsPerOp != 431151258 {
		t.Errorf("parsed %+v", r)
	}
	if r.Extra["B/op"] != 806438392 || r.Extra["allocs/op"] != 199694 || r.Extra["oltp-dir-indirect-%"] != 54.75 {
		t.Errorf("extras %+v", r.Extra)
	}
	if _, ok := parseBenchLine("PASS"); ok {
		t.Error("non-benchmark line should not parse")
	}
}
