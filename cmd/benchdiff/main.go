// Command benchdiff is the CI bench trend check: it compares the bench
// smoke job's BENCH_*.json output against the committed baseline and
// fails (exit 1) when a key benchmark regresses by more than the
// threshold in time/op or B/op.
//
// Usage:
//
//	benchdiff -baseline bench_baseline.json 'BENCH_*.json'
//
// The latest argument may be a glob; the lexicographically last match is
// used (the smoke job stamps files with UTC timestamps, so last = most
// recent). Benchmark names are matched with the -<GOMAXPROCS> suffix
// stripped, so baselines recorded on different core counts compare.
//
// To refresh the baseline after an intentional change, run the smoke
// benchmarks locally and commit the new file:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem | benchdiff -record bench_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// row is one benchmark result, in the schema the CI smoke job emits:
// ns_per_op plus any -benchmem / ReportMetric extras keyed by unit
// ("B/op", "allocs/op", "oltp-mpki", ...).
type row struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	Extra   map[string]float64
}

// UnmarshalJSON keeps unknown numeric fields as extras.
func (r *row) UnmarshalJSON(raw []byte) error {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return err
	}
	r.Extra = map[string]float64{}
	for k, v := range m {
		switch k {
		case "name":
			s, _ := v.(string)
			r.Name = s
		case "iters":
			f, _ := v.(float64)
			r.Iters = int(f)
		case "ns_per_op":
			f, _ := v.(float64)
			r.NsPerOp = f
		default:
			if f, ok := v.(float64); ok {
				r.Extra[k] = f
			}
		}
	}
	return nil
}

// MarshalJSON re-flattens the extras.
func (r row) MarshalJSON() ([]byte, error) {
	m := map[string]any{"name": r.Name, "iters": r.Iters, "ns_per_op": r.NsPerOp}
	for k, v := range r.Extra {
		m[k] = v
	}
	return json.Marshal(m)
}

// normalize strips the trailing -<procs> suffix go test appends to
// benchmark names, so results from machines with different core counts
// compare by benchmark identity.
func normalize(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func index(rows []row) map[string]row {
	m := make(map[string]row, len(rows))
	for _, r := range rows {
		m[normalize(r.Name)] = r
	}
	return m
}

// defaultKeys are the benchmarks the trend check guards: the headline
// trace-driven harnesses, the execution-driven timing sweep (Figure 7,
// guarding the simulator's zero-alloc hot loop and the TimingRunner
// plumbing), the cold-start-from-disk dataset load (guarding the
// tiered store's copy read path and, via the Mmap variant, the
// zero-copy mapping that must stay allocation-flat), the dataset wire
// fetch (guarding the mountless worker's install path; the P2P variant
// guards the peer fan-out, where coord_B/op must stay one dataset copy
// however many workers join), the cold result-store cell lookup
// (guarding the incremental-rerun hit path), the distributed
// coordinator's lease/complete round trip (guarding the sweepd
// protocol hot path), the external-trace import (guarding the
// parse+oracle-replay pipeline behind tracegen -import), plus the
// hot-path micro-benchmarks.
const defaultKeys = "BenchmarkTable2,BenchmarkFigure5,BenchmarkFigure7,BenchmarkDatasetColdStart,BenchmarkDatasetColdStartMmap,BenchmarkDatasetFetch,BenchmarkDatasetFetchP2P,BenchmarkResultStoreLookup,BenchmarkLeaseDispatch,BenchmarkIngestCSV,BenchmarkProtocolMulticastProcess,BenchmarkPredictorPredict/Group,BenchmarkPredictorTrain"

// compare reports per-key deltas and whether any exceeds the thresholds.
func compare(baseline, latest map[string]row, keys []string, timePct, bytesPct float64) (lines []string, failed bool) {
	sort.Strings(keys)
	for _, key := range keys {
		base, okB := baseline[key]
		cur, okL := latest[key]
		switch {
		case !okB && !okL:
			lines = append(lines, fmt.Sprintf("SKIP %s: in neither baseline nor latest", key))
			continue
		case !okB:
			lines = append(lines, fmt.Sprintf("NEW  %s: no baseline yet (time/op %.0f ns)", key, cur.NsPerOp))
			continue
		case !okL:
			lines = append(lines, fmt.Sprintf("FAIL %s: present in baseline but missing from latest run", key))
			failed = true
			continue
		}
		check := func(metric string, baseV, curV, limitPct float64) {
			if baseV <= 0 {
				return
			}
			delta := 100 * (curV - baseV) / baseV
			status := "ok  "
			if delta > limitPct {
				status = "FAIL"
				failed = true
			}
			lines = append(lines, fmt.Sprintf("%s %s %s: %.4g -> %.4g (%+.1f%%, limit +%.0f%%)",
				status, key, metric, baseV, curV, delta, limitPct))
		}
		check("time/op", base.NsPerOp, cur.NsPerOp, timePct)
		check("B/op", base.Extra["B/op"], cur.Extra["B/op"], bytesPct)
	}
	return lines, failed
}

func readRows(path string) ([]row, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// parseBenchLine parses one `go test -bench` output line into a row, as
// the CI smoke job's converter does.
func parseBenchLine(line string) (row, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
		return row{}, false
	}
	iters, err1 := strconv.Atoi(f[1])
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return row{}, false
	}
	r := row{Name: f[0], Iters: iters, NsPerOp: ns, Extra: map[string]float64{}}
	for i := 4; i+1 < len(f); i += 2 {
		if v, err := strconv.ParseFloat(f[i], 64); err == nil {
			r.Extra[f[i+1]] = v
		}
	}
	return r, true
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "committed baseline JSON")
	timePct := flag.Float64("time-threshold", 20, "max allowed time/op regression, percent")
	bytesPct := flag.Float64("bytes-threshold", 20, "max allowed B/op regression, percent")
	keysFlag := flag.String("keys", defaultKeys, "comma-separated benchmarks to guard")
	record := flag.String("record", "", "read `go test -bench` output from stdin and write it as baseline JSON to this path, then exit")
	flag.Parse()

	if *record != "" {
		var rows []row
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if r, ok := parseBenchLine(sc.Text()); ok {
				rows = append(rows, r)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		raw, err := json.MarshalIndent(rows, "", "  ")
		if err == nil {
			err = os.WriteFile(*record, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: recorded %d benchmarks to %s\n", len(rows), *record)
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -baseline bench_baseline.json 'BENCH_*.json'")
		os.Exit(2)
	}
	matches, err := filepath.Glob(flag.Arg(0))
	if err != nil || len(matches) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no latest results match %q\n", flag.Arg(0))
		os.Exit(2)
	}
	sort.Strings(matches)
	latestPath := matches[len(matches)-1]

	baseRows, err := readRows(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	curRows, err := readRows(latestPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	keys := strings.Split(*keysFlag, ",")
	for i := range keys {
		keys[i] = strings.TrimSpace(keys[i])
	}
	fmt.Printf("benchdiff: %s vs %s\n", *baselinePath, latestPath)
	lines, failed := compare(index(baseRows), index(curRows), keys, *timePct, *bytesPct)
	for _, l := range lines {
		fmt.Println(l)
	}
	if failed {
		fmt.Println("benchdiff: REGRESSION over threshold")
		os.Exit(1)
	}
	fmt.Println("benchdiff: within thresholds")
}
