package destset

import (
	"context"
	"fmt"
	"sync"

	"destset/internal/dataset"
	"destset/internal/sim"
	"destset/internal/sweep"
	"destset/internal/trace"
	"destset/internal/workload"
)

// TimingResult is one completed timing cell: a SimSpec simulated over a
// workload at one seed.
type TimingResult struct {
	// Sim is the sim spec's display label.
	Sim string
	// Config is the resolved configuration's Name() — the label the
	// paper-figure harnesses print (e.g. "Multicast+Group[1024B,8192e]").
	Config string
	// Workload names the workload (preset name or spec label).
	Workload string
	// Seed is the workload generation seed of this cell.
	Seed uint64
	// CPU names the processor model ("simple" or "detailed").
	CPU string
	// Result is the full timing outcome: runtime, traffic, latency
	// percentiles, retries.
	Result SimResult
}

// TimingObservation is one timing cell's result, streamed to observers
// the moment the cell completes — the timing analogue of Observation.
// Unlike the trace-driven sweep there are no intra-cell intervals: the
// execution-driven model's metrics (runtime, queuing) only exist once
// the cell's event queue drains, so each cell emits exactly one
// observation.
type TimingObservation = TimingResult

// TimingObserver receives per-cell timing observations. The TimingRunner
// serializes calls, so observers need not be concurrency-safe.
type TimingObserver func(TimingObservation)

// WithTimingObserver streams each completed timing cell to fn while the
// sweep runs. It has no effect on the trace-driven Runner.
func WithTimingObserver(fn TimingObserver) RunnerOption {
	return func(c *runnerConfig) { c.timingObserver = fn }
}

// timingWorkload is a resolved WorkloadSpec for the timing path: a
// source pair per seed plus an optional prepare hook that materializes
// the shared dataset across the worker pool before cells run.
type timingWorkload struct {
	name    string
	nodes   int
	open    func(seed uint64) (warm, timed sim.Source, err error)
	prepare func(seed uint64) error
}

// resolveTiming turns a WorkloadSpec into timing sources. Name- and
// Params-based workloads resolve through the process-wide dataset store
// and replay its columns zero-copy (dataset.Region); custom Open sources
// are drained once per cell into materialized traces, since the timing
// simulator needs random access for its reorder-buffer window.
func (w WorkloadSpec) resolveTiming(defaultWarm, defaultMeasure int) (timingWorkload, error) {
	// 0 inherits the runner default; negative means "explicitly none".
	warm, measure := scaleOf(w.Warm, w.Measure, defaultWarm, defaultMeasure)
	if measure == 0 {
		return timingWorkload{}, fmt.Errorf("destset: timing workload %q needs measured misses", w.label())
	}
	tw := timingWorkload{name: w.label(), nodes: w.Nodes}
	var params func(seed uint64) (WorkloadParams, error)
	switch {
	case w.Open != nil:
		if tw.nodes <= 0 {
			return timingWorkload{}, fmt.Errorf("destset: workload %q uses a custom stream source and must set Nodes", tw.name)
		}
		nodes := tw.nodes
		open := w.Open
		tw.open = func(seed uint64) (sim.Source, sim.Source, error) {
			st, err := open(seed)
			if err != nil {
				return nil, nil, err
			}
			warmTr := &trace.Trace{Nodes: nodes, Records: make([]trace.Record, 0, warm)}
			timedTr := &trace.Trace{Nodes: nodes, Records: make([]trace.Record, 0, measure)}
			for i := 0; i < warm; i++ {
				rec, _ := st.Next()
				warmTr.Append(rec)
			}
			for i := 0; i < measure; i++ {
				rec, _ := st.Next()
				timedTr.Append(rec)
			}
			return sim.TraceSource(warmTr), sim.TraceSource(timedTr), nil
		}
		return tw, nil
	case w.Params != nil:
		base := *w.Params
		if tw.nodes == 0 {
			tw.nodes = base.Nodes
		}
		params = func(seed uint64) (WorkloadParams, error) {
			p := base
			// Imported traces are seed-invariant: every seed replays the
			// one content-addressed dataset (same guard as resolve).
			if !p.Import.Enabled() {
				p.Seed = seed
			}
			return p, nil
		}
	case w.Name != "":
		base, err := workload.Preset(w.Name, 0)
		if err != nil {
			return timingWorkload{}, err
		}
		if tw.nodes == 0 {
			tw.nodes = base.Nodes
		}
		name := w.Name
		params = func(seed uint64) (WorkloadParams, error) {
			return workload.Preset(name, seed)
		}
	default:
		return timingWorkload{}, fmt.Errorf("destset: workload spec needs a Name, Params or Open source")
	}
	tw.open = func(seed uint64) (sim.Source, sim.Source, error) {
		p, err := params(seed)
		if err != nil {
			return nil, nil, err
		}
		d, err := dataset.GetShared(p, warm, measure)
		if err != nil {
			return nil, nil, err
		}
		var warmSrc sim.Source
		if warm > 0 {
			warmSrc = d.WarmRegion()
		}
		return warmSrc, d.MeasureRegion(), nil
	}
	tw.prepare = func(seed uint64) error {
		p, err := params(seed)
		if err != nil {
			return err
		}
		_, err = dataset.GetShared(p, warm, measure)
		return err
	}
	return tw, nil
}

// TimingRunner fans a []SimSpec × []WorkloadSpec × seeds cross-product
// of execution-driven timing simulations over a worker pool — the timing
// analogue of Runner. Every cell resolves a fresh sim.Config from its
// spec; Name- and Params-based workloads resolve through the shared
// dataset store and are replayed zero-copy by any number of concurrent
// cells. Cells share no mutable state, so Run returns the same results
// in the same order at parallelism 1 and parallelism N.
type TimingRunner struct {
	sims      []SimSpec
	workloads []WorkloadSpec
	cfg       runnerConfig
}

// NewTimingRunner builds a timing sweep over the cross-product of sim
// and workload specs. It accepts the Runner's functional options; the
// trace-driven-only ones (WithInterval, WithObserver) are ignored — use
// WithTimingObserver to stream per-cell timing observations.
func NewTimingRunner(sims []SimSpec, workloads []WorkloadSpec, opts ...RunnerOption) *TimingRunner {
	return &TimingRunner{
		sims:      append([]SimSpec(nil), sims...),
		workloads: append([]WorkloadSpec(nil), workloads...),
		cfg:       newRunnerConfig(opts),
	}
}

// timingCell is one coordinate of the cross-product.
type timingCell struct {
	wi, si int
	seed   uint64
}

// Run executes the sweep and returns one TimingResult per cell, ordered
// workload-major: for each workload, for each sim spec, for each seed.
// Under WithShard only that shard's cells run; the results keep the
// global order, so Merge reassembles shard outputs into the exact
// full-run slice. A nil ctx falls back to WithContext, then
// context.Background(). On cancellation Run returns promptly with the
// completed cells (still in order) and the context's error; the
// execution-driven cells themselves check the context, so even a single
// huge simulation aborts promptly.
func (r *TimingRunner) Run(ctx context.Context) ([]TimingResult, error) {
	if ctx == nil {
		ctx = r.cfg.ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(r.sims) == 0 || len(r.workloads) == 0 {
		return nil, fmt.Errorf("destset: TimingRunner needs at least one sim spec and one workload spec")
	}
	for _, s := range r.sims {
		if err := s.validate(); err != nil {
			return nil, err
		}
	}
	workloads := make([]timingWorkload, len(r.workloads))
	for i, w := range r.workloads {
		tw, err := w.resolveTiming(r.cfg.warm, r.cfg.measure)
		if err != nil {
			return nil, err
		}
		workloads[i] = tw
	}
	cells := make([]timingCell, 0, len(r.sims)*len(workloads)*len(r.cfg.seeds))
	for wi := range workloads {
		for si := range r.sims {
			for _, seed := range r.cfg.seeds {
				cells = append(cells, timingCell{wi: wi, si: si, seed: seed})
			}
		}
	}
	subset, err := sweep.SubsetIndices(len(cells), r.cfg.cells, r.cfg.shard, r.cfg.shards)
	if err != nil {
		return nil, err
	}

	// Result store: resolve every cell the store can serve up front —
	// their results replay without simulating, and their datasets are
	// not even prewarmed, so a fully-warm rerun touches neither the
	// simulator nor the generator. Custom-Open workloads are never
	// cached (their fingerprints do not cover the stream contents).
	store := r.cfg.resolveResultStore()
	var (
		cellFPs []string
		hits    []*TimingResult
	)
	live := subset
	if store != nil {
		plan, perr := r.Plan()
		if perr != nil {
			return nil, perr
		}
		cellFPs = make([]string, len(cells))
		for i := range cells {
			cellFPs[i] = plan.Cell(i).Fingerprint
		}
		hits = make([]*TimingResult, len(cells))
		live = make([]int, 0, len(subset))
		for _, i := range subset {
			if r.workloads[cells[i].wi].Open == nil {
				if tr, ok := store.getTiming(cellFPs[i]); ok {
					hit := tr
					hits[i] = &hit
					continue
				}
			}
			live = append(live, i)
		}
	}

	// Prewarm phase: materialize every shared dataset this shard's cells
	// replay — once per (workload, seed) — before any cell runs, so
	// generation fans out over the pool instead of serializing the first
	// cells of each workload.
	jobs := sweep.PrewarmJobsFor(live, func(i int) sweep.PrewarmJob {
		return sweep.PrewarmJob{W: cells[i].wi, Seed: cells[i].seed}
	})
	err = sweep.Prewarm(ctx, r.cfg.parallelism, jobs,
		func(w int) func(uint64) error { return workloads[w].prepare },
		func(w int) string { return workloads[w].name })
	if err != nil {
		return nil, err
	}

	var obsMu sync.Mutex
	observe := r.cfg.timingObserver
	return sweep.Collect(ctx, subset, r.cfg.parallelism, func(ctx context.Context, i int) (*TimingResult, error) {
		if hits != nil && hits[i] != nil {
			tr := hits[i]
			if observe != nil {
				obsMu.Lock()
				observe(*tr)
				obsMu.Unlock()
			}
			return tr, nil
		}
		c := cells[i]
		spec, w := r.sims[c.si], workloads[c.wi]
		cfg, err := spec.Resolve(w.nodes)
		if err != nil {
			return nil, err
		}
		warmSrc, timedSrc, err := w.open(c.seed)
		if err != nil {
			return nil, fmt.Errorf("destset: workload %q: %w", w.name, err)
		}
		res, err := sim.Simulate(ctx, cfg, warmSrc, timedSrc)
		if err != nil {
			return nil, err
		}
		tr := &TimingResult{
			Sim:      spec.DisplayLabel(),
			Config:   cfg.Name(),
			Workload: w.name,
			Seed:     c.seed,
			CPU:      cfg.CPU.String(),
			Result:   res,
		}
		if observe != nil {
			obsMu.Lock()
			observe(*tr)
			obsMu.Unlock()
		}
		if store != nil && r.workloads[c.wi].Open == nil {
			store.putTiming(cellFPs[i], *tr)
		}
		return tr, nil
	})
}

// EvaluateTiming runs a single (sim, workload) timing cell — the
// one-call version of the TimingRunner:
//
//	EvaluateTiming(ctx,
//	    SimSpec{Protocol: ProtocolMulticast, Policy: Group, UsePolicy: true},
//	    WorkloadSpec{Name: "oltp"})
func EvaluateTiming(ctx context.Context, spec SimSpec, workload WorkloadSpec, opts ...RunnerOption) (SimResult, error) {
	res, err := NewTimingRunner([]SimSpec{spec}, []WorkloadSpec{workload}, opts...).Run(ctx)
	if err != nil {
		return SimResult{}, err
	}
	if len(res) != 1 {
		return SimResult{}, fmt.Errorf("destset: expected one result, got %d", len(res))
	}
	return res[0].Result, nil
}
