package destset

import (
	"encoding/json"
	"fmt"

	"destset/internal/results"
	"destset/internal/sweep"
)

// Result store: content-addressed memoization of completed sweep cells.
//
// A cell's CellID fingerprint (PR 4) is a pure function of its spec,
// workload, seed, scale and observation interval, so a completed cell's
// result — the aggregate totals plus the exact observation stream it
// emitted — can be stored under that fingerprint and replayed by any
// later run that plans the same cell: same process, next process, or a
// distributed sweep restarted from scratch. Because the stored stream
// is the byte-for-byte JSON round-trip of what the cell emitted, and
// merged output always flows through MergeObservations into plan order,
// a warm rerun is byte-identical to a cold one while computing only the
// cells whose fingerprints changed.
//
// Cells of workloads with a custom Open stream source are never cached:
// their fingerprints cover only the label and shape, not the stream
// contents, so a hit could replay a different experiment's results.

// ResultStats are a result store's per-tier counters; see
// results.Stats. Stores counts cells actually computed and offered to
// the store — a warm rerun keeps it at zero.
type ResultStats = results.Stats

// ResultStore is a tiered (memory LRU + disk) store of completed sweep
// cells, content-addressed by plan-cell fingerprint. Attach one to a
// runner with WithResultStore, or configure the process-wide shared
// store with SetResultDir. All methods are safe for concurrent use.
type ResultStore struct {
	s *results.Store
}

// NewResultStore returns an empty, memory-only result store. SetDir
// adds the persistent disk tier.
func NewResultStore() *ResultStore {
	return &ResultStore{s: results.NewStore()}
}

// SetDir configures the store's on-disk tier rooted at dir (created if
// missing); an empty dir disables the tier.
func (rs *ResultStore) SetDir(dir string) error { return rs.s.SetDir(dir) }

// Dir returns the configured result directory ("" when the disk tier
// is disabled).
func (rs *ResultStore) Dir() string { return rs.s.Dir() }

// SetLimit caps the store's resident record bytes; 0 (the default)
// means unbounded. Least-recently-used records are evicted first and
// reload from the disk tier — or recompute — on next use.
func (rs *ResultStore) SetLimit(bytes int64) { rs.s.SetLimit(bytes) }

// Purge drops every record from the memory tier and returns how many
// were dropped; the disk tier is untouched.
func (rs *ResultStore) Purge() int { return rs.s.Purge() }

// PurgeDir removes every record file (and orphaned temp file) from the
// disk tier and returns how many were removed.
func (rs *ResultStore) PurgeDir() (int, error) { return rs.s.PurgeDir() }

// Stats reports the store's per-tier hit/miss/store counters and
// resident footprint.
func (rs *ResultStore) Stats() ResultStats { return rs.s.Stats() }

// sharedResults is the process-wide result store. Unlike the dataset
// store it participates in runs only once SetResultDir names a
// directory: result caching changes what a "run" measures (benchmarks
// rerunning one sweep must keep computing it), so it is strictly
// opt-in.
var sharedResults = NewResultStore()

// SharedResults returns the process-wide result store SetResultDir
// configures — the store handed to coordinators and servers that
// should share the CLI flags' directory.
func SharedResults() *ResultStore { return sharedResults }

// SetResultDir points the process-wide result store at dir (created if
// missing) and enables result caching for every Runner and TimingRunner
// in the process that does not carry its own WithResultStore: completed
// cells are served from the store and only misses compute. An empty dir
// disables both the tier and the implicit caching. This is the
// result-side mirror of SetDatasetDir.
func SetResultDir(dir string) error { return sharedResults.SetDir(dir) }

// ResultDir returns the directory configured with SetResultDir ("").
func ResultDir() string { return sharedResults.Dir() }

// ResultStoreStats reports the process-wide result store's counters.
func ResultStoreStats() ResultStats { return sharedResults.Stats() }

// PurgeResults drops the process-wide result store's memory tier.
func PurgeResults() int { return sharedResults.Purge() }

// PurgeResultDir removes every record file from the process-wide
// store's disk tier.
func PurgeResultDir() (int, error) { return sharedResults.PurgeDir() }

// WithResultStore attaches a result store to a runner: each planned
// cell is looked up before it executes — a hit replays the stored
// result and observation stream, a miss computes and is stored. A nil
// store restores the default (the shared store, when SetResultDir has
// enabled it).
func WithResultStore(rs *ResultStore) RunnerOption {
	return func(c *runnerConfig) { c.resultStore = rs }
}

// resolveResultStore picks the store a run consults: an explicit
// WithResultStore wins, else the shared store once SetResultDir armed
// it, else none.
func (c *runnerConfig) resolveResultStore() *ResultStore {
	if c.resultStore != nil {
		return c.resultStore
	}
	if sharedResults.Dir() != "" {
		return sharedResults
	}
	return nil
}

// traceCellRecord is a trace cell's stored payload (JSON). Records
// written by a runner are Final: they carry the built engine's Name()
// and can reconstruct a full RunResult. Records spilled from uploaded
// observation streams (the distributed coordinator's spill path) lack
// the engine name — observation records never carry it — and serve
// observation replay only; a runner treats them as misses and upgrades
// them to Final when it computes the cell.
type traceCellRecord struct {
	Final        bool          `json:"final,omitempty"`
	EngineName   string        `json:"engine_name,omitempty"`
	Totals       Totals        `json:"totals"`
	Observations []Observation `json:"observations,omitempty"`
}

// getTrace loads a trace cell record.
func (rs *ResultStore) getTrace(fp string) (traceCellRecord, bool) {
	kind, payload, ok := rs.s.Get(fp)
	if !ok || kind != PlanKindTrace {
		return traceCellRecord{}, false
	}
	var rec traceCellRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return traceCellRecord{}, false
	}
	return rec, true
}

// putTrace stores a trace cell record (best-effort on the disk tier).
func (rs *ResultStore) putTrace(fp string, rec traceCellRecord) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	rs.s.Put(PlanKindTrace, fp, payload)
}

// getTiming loads a timing cell record. The payload is exactly the
// cell's JSONL observation line, so one format serves the runner, the
// coordinator and the observations endpoint alike.
func (rs *ResultStore) getTiming(fp string) (TimingResult, bool) {
	kind, payload, ok := rs.s.Get(fp)
	if !ok || kind != PlanKindTiming {
		return TimingResult{}, false
	}
	var tr TimingResult
	if err := json.Unmarshal(payload, &tr); err != nil {
		return TimingResult{}, false
	}
	return tr, true
}

// putTiming stores a timing cell record.
func (rs *ResultStore) putTiming(fp string, tr TimingResult) {
	payload, err := json.Marshal(tr)
	if err != nil {
		return
	}
	rs.s.Put(PlanKindTiming, fp, payload)
}

// HasCell reports whether the store can serve cell fp to a runner of
// the given kind — the lookup the runners themselves perform, without
// materializing the result. Trace records require Final (see
// traceCellRecord); timing records are always complete.
func (rs *ResultStore) HasCell(kind, fp string) bool {
	switch kind {
	case PlanKindTrace:
		rec, ok := rs.getTrace(fp)
		return ok && rec.Final
	case PlanKindTiming:
		_, ok := rs.getTiming(fp)
		return ok
	}
	return false
}

// CellRecords returns cell fp's stored observation stream as JSONL
// record lines — byte-identical to what a JSONLObserver wrote when the
// cell computed — along with the plan kind the record belongs to. It is
// the kind-agnostic lookup behind CellLines and the sweepapi
// observations endpoint. Unlike the runner path, non-Final trace
// records qualify — replaying observations needs no engine name.
func (rs *ResultStore) CellRecords(fp string) (kind string, lines [][]byte, ok bool) {
	kind, payload, ok := rs.s.Get(fp)
	if !ok {
		return "", nil, false
	}
	switch kind {
	case PlanKindTrace:
		var rec traceCellRecord
		if json.Unmarshal(payload, &rec) != nil || len(rec.Observations) == 0 {
			return "", nil, false
		}
		lines = make([][]byte, 0, len(rec.Observations))
		for _, o := range rec.Observations {
			line, err := json.Marshal(o)
			if err != nil {
				return "", nil, false
			}
			lines = append(lines, line)
		}
		return kind, lines, true
	case PlanKindTiming:
		var tr TimingResult
		if json.Unmarshal(payload, &tr) != nil {
			return "", nil, false
		}
		line, err := json.Marshal(tr)
		if err != nil {
			return "", nil, false
		}
		return kind, [][]byte{line}, true
	}
	return "", nil, false
}

// CellLines returns cell fp's observation stream when the stored record
// belongs to a plan of the given kind. This is the distributed
// coordinator's lookup: a hit cell's lines are merged into the output
// without leasing the cell to any worker.
func (rs *ResultStore) CellLines(kind, fp string) ([][]byte, bool) {
	got, lines, ok := rs.CellRecords(fp)
	if !ok || got != kind {
		return nil, false
	}
	return lines, true
}

// StoreCellLines stores cell fp from its raw JSONL observation lines —
// the distributed coordinator's spill: accepted uploads land here so a
// restarted sweep (or a local rerun pointed at the same directory)
// resumes warm. Trace lines must be the cell's full observation stream
// in emission order; the aggregate totals are recovered from the last
// observation's cumulative counters. Timing cells carry exactly one
// line.
func (rs *ResultStore) StoreCellLines(kind, fp string, lines [][]byte) error {
	if len(lines) == 0 {
		return fmt.Errorf("destset: cell %s has no observation records", fp)
	}
	switch kind {
	case PlanKindTrace:
		obs := make([]Observation, len(lines))
		for i, line := range lines {
			if err := json.Unmarshal(line, &obs[i]); err != nil {
				return fmt.Errorf("destset: cell %s record %d: %w", fp, i, err)
			}
		}
		rs.putTrace(fp, traceCellRecord{
			Totals:       obs[len(obs)-1].Cumulative,
			Observations: obs,
		})
		return nil
	case PlanKindTiming:
		if len(lines) != 1 {
			return fmt.Errorf("destset: timing cell %s has %d observation records, want 1", fp, len(lines))
		}
		var tr TimingResult
		if err := json.Unmarshal(lines[0], &tr); err != nil {
			return fmt.Errorf("destset: cell %s: %w", fp, err)
		}
		rs.putTiming(fp, tr)
		return nil
	}
	return fmt.Errorf("destset: unknown plan kind %q", kind)
}

// traceCellCache adapts a ResultStore to the sweep engine's CellCache
// for one planned trace run. Cells of custom-Open workloads are
// declined (their fingerprints do not cover the stream contents).
type traceCellCache struct {
	store *ResultStore
	plan  *SweepPlan
	// cacheable flags each workload index; stride is cells per workload
	// (engines × seeds), matching the plan's workload-major order.
	cacheable []bool
	stride    int
}

func (c *traceCellCache) cellFP(i int) (string, bool) {
	if !c.cacheable[i/c.stride] {
		return "", false
	}
	return c.plan.Cell(i).Fingerprint, true
}

func (c *traceCellCache) Lookup(i int) (*sweep.Result, []Observation, bool) {
	fp, ok := c.cellFP(i)
	if !ok {
		return nil, nil, false
	}
	rec, ok := c.store.getTrace(fp)
	if !ok || !rec.Final {
		return nil, nil, false
	}
	cell := c.plan.Cell(i)
	return &sweep.Result{
		Engine:     cell.Engine,
		EngineName: rec.EngineName,
		Workload:   cell.Workload,
		Seed:       cell.Seed,
		Totals:     rec.Totals,
	}, rec.Observations, true
}

func (c *traceCellCache) Store(i int, res sweep.Result, obs []Observation) {
	fp, ok := c.cellFP(i)
	if !ok {
		return
	}
	c.store.putTrace(fp, traceCellRecord{
		Final:        true,
		EngineName:   res.EngineName,
		Totals:       res.Totals,
		Observations: obs,
	})
}
