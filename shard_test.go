package destset_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"destset"
	"destset/internal/experiments"
	"destset/internal/workload"
)

// table2Workloads builds small-scale Name-based specs over the paper's
// full Table 2 workload set (other tests may register extra presets, so
// the six are named explicitly).
func table2Workloads(t *testing.T, warm, measure int) []destset.WorkloadSpec {
	t.Helper()
	names := []string{"apache", "barnes-hut", "ocean", "oltp", "slashcode", "specjbb"}
	specs := make([]destset.WorkloadSpec, len(names))
	for i, n := range names {
		if _, err := workload.Preset(n, 0); err != nil {
			t.Fatal(err)
		}
		specs[i] = destset.WorkloadSpec{Name: n, Warm: warm, Measure: measure}
	}
	return specs
}

// TestRunnerShardUnionEquivalence is the sharded-execution acceptance
// check for the trace-driven Runner: for every shard split, running
// each shard independently (at parallelism 1 and N) and merging
// reproduces the unsharded run bit for bit, over the Table 2 workload
// set.
func TestRunnerShardUnionEquivalence(t *testing.T) {
	engines := []destset.EngineSpec{
		{Protocol: destset.ProtocolSnooping},
		{Protocol: destset.ProtocolDirectory},
		destset.SpecForPolicy(destset.Group),
		destset.SpecForPolicy(destset.OwnerGroup),
	}
	workloads := table2Workloads(t, 800, 800)
	baseOpts := func(extra ...destset.RunnerOption) []destset.RunnerOption {
		return append([]destset.RunnerOption{destset.WithSeeds(2, 7)}, extra...)
	}

	full, err := destset.NewRunner(engines, workloads, baseOpts(destset.WithParallelism(1))...).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, full)
	if len(full) != len(engines)*len(workloads)*2 {
		t.Fatalf("full run returned %d cells", len(full))
	}

	for _, shards := range []int{1, 2, 3, 5} {
		for _, par := range []int{1, 4} {
			parts := make([][]destset.RunResult, shards)
			for s := 0; s < shards; s++ {
				res, err := destset.NewRunner(engines, workloads,
					baseOpts(destset.WithParallelism(par), destset.WithShard(s, shards))...,
				).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				parts[s] = res
			}
			merged, err := destset.NewRunner(engines, workloads, baseOpts()...).Merge(parts)
			if err != nil {
				t.Fatalf("%d shards, parallelism %d: %v", shards, par, err)
			}
			if got := mustJSON(t, merged); !bytes.Equal(got, want) {
				t.Errorf("%d shards at parallelism %d merge differently from the full run", shards, par)
			}
		}
	}
}

// TestTimingRunnerShardUnionEquivalence is the same property for the
// execution-driven TimingRunner over the Figure 7 protocol
// configurations.
func TestTimingRunnerShardUnionEquivalence(t *testing.T) {
	sims := experiments.TimingSpecs(destset.SimpleCPU)
	workloads := []destset.WorkloadSpec{
		{Name: "oltp", Warm: 1000, Measure: 1000},
		{Name: "barnes-hut", Warm: 1000, Measure: 1000},
	}

	full, err := destset.NewTimingRunner(sims, workloads, destset.WithParallelism(1)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, full)
	if len(full) != len(sims)*len(workloads) {
		t.Fatalf("full run returned %d cells", len(full))
	}

	for _, shards := range []int{1, 2, 3} {
		for _, par := range []int{1, 4} {
			parts := make([][]destset.TimingResult, shards)
			for s := 0; s < shards; s++ {
				res, err := destset.NewTimingRunner(sims, workloads,
					destset.WithParallelism(par), destset.WithShard(s, shards)).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				parts[s] = res
			}
			merged, err := destset.NewTimingRunner(sims, workloads).Merge(parts)
			if err != nil {
				t.Fatalf("%d shards, parallelism %d: %v", shards, par, err)
			}
			if got := mustJSON(t, merged); !bytes.Equal(got, want) {
				t.Errorf("%d shards at parallelism %d merge differently from the full run", shards, par)
			}
		}
	}
}

// TestPlanStability pins the plan contract sharding rests on: plans are
// pure functions of the runner's configuration, shard-independent, and
// sensitive to every coordinate.
func TestPlanStability(t *testing.T) {
	engines := []destset.EngineSpec{
		{Protocol: destset.ProtocolSnooping},
		destset.SpecForPolicy(destset.Group),
	}
	workloads := []destset.WorkloadSpec{{Name: "oltp", Warm: 100, Measure: 100}}
	mk := func(opts ...destset.RunnerOption) *destset.SweepPlan {
		p, err := destset.NewRunner(engines, workloads, opts...).Plan()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := mk(destset.WithSeeds(1, 2))
	if base.Len() != 4 || base.Kind() != destset.PlanKindTrace {
		t.Fatalf("plan: len %d kind %s", base.Len(), base.Kind())
	}
	if got := mk(destset.WithSeeds(1, 2)).Fingerprint(); got != base.Fingerprint() {
		t.Error("identical runners produced different plan fingerprints")
	}
	if got := mk(destset.WithSeeds(1, 2), destset.WithShard(1, 2)).Fingerprint(); got != base.Fingerprint() {
		t.Error("WithShard changed the plan fingerprint; all shards must share one plan")
	}
	if got := mk(destset.WithSeeds(1, 3)).Fingerprint(); got == base.Fingerprint() {
		t.Error("different seeds share a plan fingerprint")
	}
	bigger, err := destset.NewRunner(engines,
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 100, Measure: 200}},
		destset.WithSeeds(1, 2)).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if bigger.Fingerprint() == base.Fingerprint() {
		t.Error("different scale shares a plan fingerprint")
	}
	// A spec inheriting the runner default scale fingerprints the
	// resolved scale, not the zero.
	inheritA, err := destset.NewRunner(engines,
		[]destset.WorkloadSpec{{Name: "oltp"}}, destset.WithMeasure(200)).Plan()
	if err != nil {
		t.Fatal(err)
	}
	inheritB, err := destset.NewRunner(engines,
		[]destset.WorkloadSpec{{Name: "oltp"}}, destset.WithMeasure(300)).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if inheritA.Fingerprint() == inheritB.Fingerprint() {
		t.Error("different inherited default scale shares a plan fingerprint")
	}

	// Timing plans with different knob overrides differ too.
	sims := []destset.SimSpec{{Protocol: destset.ProtocolSnooping}}
	tp, err := destset.NewTimingRunner(sims, workloads).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if tp.Kind() != destset.PlanKindTiming {
		t.Errorf("timing plan kind = %s", tp.Kind())
	}
	sims2 := []destset.SimSpec{{Protocol: destset.ProtocolSnooping, LinkBytesPerNs: 2.5}}
	tp2, err := destset.NewTimingRunner(sims2, workloads).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if tp.Fingerprint() == tp2.Fingerprint() {
		t.Error("different sim knobs share a plan fingerprint")
	}
}

// TestShardValidation pins the failure modes: out-of-range shards fail
// at Run, and Merge rejects wrong splits and foreign results.
func TestShardValidation(t *testing.T) {
	engines := []destset.EngineSpec{{Protocol: destset.ProtocolSnooping}}
	workloads := []destset.WorkloadSpec{{Name: "oltp", Warm: 50, Measure: 50}}
	for _, bad := range [][2]int{{2, 2}, {-1, 2}, {1, 1}} {
		r := destset.NewRunner(engines, workloads, destset.WithShard(bad[0], bad[1]))
		if _, err := r.Run(context.Background()); err == nil {
			t.Errorf("WithShard(%d, %d) ran", bad[0], bad[1])
		}
	}

	r := destset.NewRunner(engines, workloads)
	full, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Merge([][]destset.RunResult{full, full}); err == nil {
		t.Error("Merge accepted the full run twice")
	}
	foreign := append([]destset.RunResult(nil), full...)
	foreign[0].Workload = "not-oltp"
	if _, err := r.Merge([][]destset.RunResult{foreign}); err == nil {
		t.Error("Merge accepted a result whose cell is not in the plan")
	}
	merged, err := r.Merge([][]destset.RunResult{full})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, merged), mustJSON(t, full)) {
		t.Error("single-shard merge is not the identity")
	}
}

// TestColdProcessWithWarmDatasetDirGeneratesNothing is the disk-tier
// acceptance check at the facade: after one process-equivalent has
// populated the dataset directory, a cold run (memory purged, same dir)
// performs zero trace generations — verified by the per-tier
// DatasetCacheStats counters — and produces bit-identical results.
func TestColdProcessWithWarmDatasetDirGeneratesNothing(t *testing.T) {
	defer func() {
		destset.SetDatasetDir("")
		destset.PurgeDatasets()
	}()
	if err := destset.SetDatasetDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	destset.PurgeDatasets() // other tests may have warmed the keys we use

	engines := []destset.EngineSpec{
		{Protocol: destset.ProtocolDirectory},
		destset.SpecForPolicy(destset.OwnerGroup),
	}
	workloads := []destset.WorkloadSpec{
		{Name: "oltp", Warm: 600, Measure: 600},
		{Name: "ocean", Warm: 600, Measure: 600},
	}
	run := func() []byte {
		res, err := destset.NewRunner(engines, workloads, destset.WithSeeds(5)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return mustJSON(t, res)
	}

	before := destset.DatasetCacheStats()
	want := run()
	mid := destset.DatasetCacheStats()
	if gens := mid.Generations - before.Generations; gens != 2 {
		t.Fatalf("warm run generated %d datasets, want 2", gens)
	}

	// "Cold process": drop the memory tier, keep the disk tier.
	if n := destset.PurgeDatasets(); n != 2 {
		t.Fatalf("purged %d datasets, want 2", n)
	}
	got := run()
	after := destset.DatasetCacheStats()
	if gens := after.Generations - mid.Generations; gens != 0 {
		t.Errorf("cold run generated %d datasets, want 0 (disk tier should serve them)", gens)
	}
	if hits := after.DiskHits - mid.DiskHits; hits != 2 {
		t.Errorf("cold run had %d disk hits, want 2", hits)
	}
	if !bytes.Equal(got, want) {
		t.Error("disk-tier results differ from generated results")
	}

	// PurgeDatasetDir drops exactly the spilled files; the next purge
	// of memory then forces regeneration.
	if n, err := destset.PurgeDatasetDir(); err != nil || n != 2 {
		t.Fatalf("PurgeDatasetDir = (%d, %v), want (2, nil)", n, err)
	}
	destset.PurgeDatasets()
	final := run()
	end := destset.DatasetCacheStats()
	if gens := end.Generations - after.Generations; gens != 2 {
		t.Errorf("post-PurgeDatasetDir run generated %d datasets, want 2", gens)
	}
	if !bytes.Equal(final, want) {
		t.Error("regenerated results differ")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestTimingSweepMatchesFigure7 ties the sharded entry point to the
// figure harness: merging every shard of experiments.TimingSweep yields
// exactly the cells Figure 7's own runner computes.
func TestTimingSweepMatchesFigure7(t *testing.T) {
	opt := experiments.QuickOptions()
	opt.Workloads = []string{"oltp"}
	opt.TimedWarmMisses, opt.TimedMisses = 1000, 1000

	full, err := experiments.TimingSweep(context.Background(), opt, destset.SimpleCPU, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var parts [][]destset.TimingResult
	for s := 0; s < 2; s++ {
		res, err := experiments.TimingSweep(context.Background(), opt, destset.SimpleCPU, s, 2)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, res)
	}
	plan, err := experiments.TimingSweepPlan(opt, destset.SimpleCPU)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != len(full) {
		t.Fatalf("plan has %d cells, sweep returned %d", plan.Len(), len(full))
	}
	if len(parts[0])+len(parts[1]) != len(full) {
		t.Fatalf("shards cover %d cells, want %d", len(parts[0])+len(parts[1]), len(full))
	}
	// Interleave (round-robin) and compare.
	merged := make([]destset.TimingResult, len(full))
	for s, part := range parts {
		for k, r := range part {
			merged[s+2*k] = r
		}
	}
	if !bytes.Equal(mustJSON(t, merged), mustJSON(t, full)) {
		t.Error("sharded TimingSweep union differs from the full sweep")
	}
	for i, c := range plan.Cells() {
		if full[i].Sim != c.Engine || full[i].Workload != c.Workload || full[i].Seed != c.Seed {
			t.Fatalf("cell %d: result (%s,%s,%d) vs plan (%s,%s,%d)",
				i, full[i].Sim, full[i].Workload, full[i].Seed, c.Engine, c.Workload, c.Seed)
		}
	}
}
