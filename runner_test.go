package destset_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"destset"
)

// allPolicySpecs is the paper's full policy set: the eight built-in
// prediction policies, routed the way EvaluatePolicy routes them.
func allPolicySpecs() []destset.EngineSpec {
	policies := []destset.Policy{
		destset.Owner, destset.BroadcastIfShared, destset.Group, destset.OwnerGroup,
		destset.StickySpatial, destset.Minimal, destset.Broadcast, destset.Oracle,
	}
	specs := make([]destset.EngineSpec, len(policies))
	for i, p := range policies {
		specs[i] = destset.SpecForPolicy(p)
	}
	return specs
}

func workloadSpecs(warm, measure int) []destset.WorkloadSpec {
	names := destset.Workloads()
	out := make([]destset.WorkloadSpec, 0, len(names))
	paper := map[string]bool{
		"apache": true, "barnes-hut": true, "ocean": true,
		"oltp": true, "slashcode": true, "specjbb": true,
	}
	for _, n := range names {
		if !paper[n] {
			continue // tests in this binary may register extra presets
		}
		out = append(out, destset.WorkloadSpec{Name: n, Warm: warm, Measure: measure})
	}
	return out
}

// TestRunnerFullSweepDeterministic is the acceptance sweep: all eight
// predictor policies across the six paper workloads through a single
// Run call, byte-identical at parallelism 1 and parallelism 4.
func TestRunnerFullSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-product sweep")
	}
	engines := allPolicySpecs()
	workloads := workloadSpecs(1500, 1500)

	run := func(parallelism int) []byte {
		t.Helper()
		res, err := destset.NewRunner(engines, workloads,
			destset.WithSeeds(1),
			destset.WithParallelism(parallelism),
		).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if want := len(engines) * len(workloads); len(res) != want {
			t.Fatalf("got %d results, want %d", len(res), want)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("results differ between parallelism 1 and 4:\n%s\nvs\n%s", serial, parallel)
	}
}

// TestEvaluatePolicyMatchesSeedMethodology re-derives the seed
// implementation's numbers by hand — same generator stream, same
// engine, serial — and requires EvaluatePolicy (now a Runner wrapper)
// to reproduce them exactly.
func TestEvaluatePolicyMatchesSeedMethodology(t *testing.T) {
	const (
		name    = "oltp"
		seed    = 7
		warm    = 10_000
		measure = 10_000
	)
	for _, policy := range []destset.Policy{destset.Owner, destset.Broadcast, destset.Minimal} {
		params, err := destset.NewWorkload(name, seed)
		if err != nil {
			t.Fatal(err)
		}
		g, err := destset.NewGenerator(params)
		if err != nil {
			t.Fatal(err)
		}
		var eng destset.Engine
		switch policy {
		case destset.Broadcast:
			eng = destset.NewSnoopingEngine(params.Nodes)
		case destset.Minimal:
			eng = destset.NewDirectoryEngine()
		default:
			eng = destset.NewMulticastEngine(
				destset.NewPredictorBank(destset.DefaultPredictorConfig(policy, params.Nodes)))
		}
		for i := 0; i < warm; i++ {
			rec, mi := g.Next()
			eng.Process(rec, mi)
		}
		var tot destset.Totals
		for i := 0; i < measure; i++ {
			rec, mi := g.Next()
			tot.Add(eng.Process(rec, mi))
		}
		want := destset.TradeoffResult{
			Config:             eng.Name(),
			RequestMsgsPerMiss: tot.RequestMsgsPerMiss(),
			IndirectionPercent: tot.IndirectionPercent(),
			BytesPerMiss:       tot.BytesPerMiss(),
		}
		got, err := destset.EvaluatePolicy(name, policy, seed, warm, measure)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%v: EvaluatePolicy = %+v, want seed-equivalent %+v", policy, got, want)
		}
	}
}

func TestRunnerCancellationReturnsPartialResults(t *testing.T) {
	engines := allPolicySpecs()
	workloads := workloadSpecs(100_000, 200_000)
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res []destset.RunResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := destset.NewRunner(engines, workloads,
			destset.WithParallelism(2)).Run(ctx)
		done <- outcome{res, err}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case o := <-done:
		if !errors.Is(o.err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", o.err)
		}
		if len(o.res) >= len(engines)*len(workloads) {
			t.Errorf("expected partial results, got all %d", len(o.res))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return promptly after cancellation")
	}
}

func TestRunnerStreamsObservations(t *testing.T) {
	var obs []destset.Observation
	_, err := destset.NewRunner(
		[]destset.EngineSpec{destset.SpecForPolicy(destset.Owner)},
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 1000, Measure: 5000}},
		destset.WithInterval(2000),
		destset.WithObserver(func(o destset.Observation) { obs = append(obs, o) }),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 3 {
		t.Fatalf("got %d observations, want 3 (2000+2000+1000)", len(obs))
	}
	var misses uint64
	for _, o := range obs {
		if o.Workload != "oltp" {
			t.Errorf("observation workload %q", o.Workload)
		}
		misses += o.Totals.Misses
	}
	if misses != 5000 {
		t.Errorf("observations cover %d misses, want 5000", misses)
	}
}

func TestRegisterPolicyErrors(t *testing.T) {
	if err := destset.RegisterPolicy("", func(destset.PredictorConfig) destset.Predictor { return nil }); err == nil {
		t.Error("empty policy name should fail")
	}
	if err := destset.RegisterPolicy("nilfactory", nil); err == nil {
		t.Error("nil factory should fail")
	}
	// Built-in names collide, including case-insensitive variants.
	if err := destset.RegisterPolicy("owner", func(cfg destset.PredictorConfig) destset.Predictor {
		return destset.NewPredictor(cfg)
	}); err == nil {
		t.Error("duplicate of built-in owner should fail")
	}
	if err := destset.RegisterPolicy("OWNER", func(cfg destset.PredictorConfig) destset.Predictor {
		return destset.NewPredictor(cfg)
	}); err == nil {
		t.Error("case-variant duplicate should fail")
	}
	factory := func(cfg destset.PredictorConfig) destset.Predictor {
		return destset.NewPredictor(destset.DefaultPredictorConfig(destset.Owner, cfg.Nodes))
	}
	if err := destset.RegisterPolicy("reg-test-policy", factory); err != nil {
		t.Fatal(err)
	}
	if err := destset.RegisterPolicy("RegTestPolicy", factory); err == nil {
		t.Error("normalized duplicate should fail")
	}
	found := false
	for _, n := range destset.Policies() {
		if n == "regtestpolicy" {
			found = true
		}
	}
	if !found {
		t.Errorf("registered policy missing from Policies(): %v", destset.Policies())
	}
}

func TestRunnerUnknownNamesError(t *testing.T) {
	_, err := destset.NewRunner(
		[]destset.EngineSpec{{PolicyName: "no-such-policy"}},
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 10, Measure: 10}},
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("unknown policy: err = %v", err)
	}
	_, err = destset.NewRunner(
		[]destset.EngineSpec{{Protocol: "no-such-engine"}},
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 10, Measure: 10}},
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("unknown engine: err = %v", err)
	}
	_, err = destset.NewRunner(
		[]destset.EngineSpec{destset.SpecForPolicy(destset.Owner)},
		[]destset.WorkloadSpec{{Name: "no-such-workload"}},
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Errorf("unknown workload: err = %v", err)
	}
	// A multicast engine without any policy is a spec error.
	_, err = destset.NewRunner(
		[]destset.EngineSpec{{Protocol: destset.ProtocolMulticast}},
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 10, Measure: 10}},
	).Run(context.Background())
	if err == nil {
		t.Error("multicast without a policy should fail")
	}
}

func TestRegisterWorkloadAndSweep(t *testing.T) {
	params, err := destset.NewWorkload("barnes-hut", 1)
	if err != nil {
		t.Fatal(err)
	}
	preset := func(seed uint64) destset.WorkloadParams {
		p := params
		p.Name = "tiny-barnes"
		p.Seed = seed
		p.SharedUnits = 64
		p.StreamBlocksPerNode = 2048
		return p
	}
	if err := destset.RegisterWorkload("tiny-barnes", preset); err != nil {
		t.Fatal(err)
	}
	if err := destset.RegisterWorkload("tiny-barnes", preset); err == nil {
		t.Error("duplicate workload registration should fail")
	}
	if err := destset.RegisterWorkload("", preset); err == nil {
		t.Error("empty workload name should fail")
	}
	found := false
	for _, n := range destset.Workloads() {
		if n == "tiny-barnes" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered workload missing from Workloads(): %v", destset.Workloads())
	}
	res, err := destset.NewRunner(
		[]destset.EngineSpec{destset.SpecForPolicy(destset.Owner)},
		[]destset.WorkloadSpec{{Name: "tiny-barnes", Warm: 500, Measure: 500}},
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Totals.Misses != 500 {
		t.Errorf("sweep over registered workload: %+v", res)
	}
}

func TestRegisterEngineAndSweep(t *testing.T) {
	// A trivial custom engine: directory accounting with a constant
	// per-miss overhead message, built through the public factory hook.
	factory := func(nodes int, newBank func() []destset.Predictor) (destset.Engine, error) {
		if nodes <= 0 {
			return nil, fmt.Errorf("need nodes")
		}
		return destset.NewDirectoryEngine(), nil
	}
	if err := destset.RegisterEngine("dir-alias", factory); err != nil {
		t.Fatal(err)
	}
	if err := destset.RegisterEngine("dir-alias", factory); err == nil {
		t.Error("duplicate engine registration should fail")
	}
	if err := destset.RegisterEngine("", factory); err == nil {
		t.Error("empty engine name should fail")
	}
	found := false
	for _, n := range destset.Engines() {
		if n == "dir-alias" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered engine missing from Engines(): %v", destset.Engines())
	}
	got, err := destset.Evaluate(context.Background(),
		destset.EngineSpec{Protocol: "dir-alias"},
		destset.WorkloadSpec{Name: "oltp", Warm: 2000, Measure: 2000})
	if err != nil {
		t.Fatal(err)
	}
	want, err := destset.Evaluate(context.Background(),
		destset.EngineSpec{Protocol: destset.ProtocolDirectory},
		destset.WorkloadSpec{Name: "oltp", Warm: 2000, Measure: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("aliased engine diverges: %+v vs %+v", got, want)
	}
}

func TestEngineResetCloneLifecycle(t *testing.T) {
	spec := destset.SpecForPolicy(destset.Group)
	eng, err := spec.NewEngine(16)
	if err != nil {
		t.Fatal(err)
	}
	run := func(e destset.Engine) destset.Totals {
		t.Helper()
		g, err := destset.NewWorkloadGenerator(destset.WorkloadSpec{Name: "slashcode"}, 5)
		if err != nil {
			t.Fatal(err)
		}
		var tot destset.Totals
		for i := 0; i < 5000; i++ {
			rec, mi := g.Next()
			tot.Add(e.Process(rec, mi))
		}
		return tot
	}
	first := run(eng)
	trained := run(eng) // second pass on a trained engine differs
	if first == trained {
		t.Fatal("expected trained second pass to differ from cold first pass")
	}
	eng.Reset()
	if again := run(eng); again != first {
		t.Errorf("Reset engine differs from fresh: %+v vs %+v", again, first)
	}
	clone := eng.Clone()
	if cloned := run(clone); cloned != first {
		t.Errorf("Clone differs from fresh: %+v vs %+v", cloned, first)
	}
	// The clone's training must not leak back into the original.
	eng.Reset()
	if again := run(eng); again != first {
		t.Errorf("original polluted by clone: %+v vs %+v", again, first)
	}
}

func TestEvaluateReachesPredictiveDirectory(t *testing.T) {
	res, err := destset.Evaluate(context.Background(),
		destset.EngineSpec{Protocol: destset.ProtocolPredictiveDirectory, PolicyName: "owner"},
		destset.WorkloadSpec{Name: "oltp", Warm: 20_000, Measure: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Config, "PredictiveDirectory+Owner") {
		t.Errorf("config = %q", res.Config)
	}
	dir, err := destset.EvaluatePolicy("oltp", destset.Minimal, 1, 20_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.IndirectionPercent >= dir.IndirectionPercent {
		t.Errorf("hybrid indirections %.1f%% should beat directory %.1f%%",
			res.IndirectionPercent, dir.IndirectionPercent)
	}
}
