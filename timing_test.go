package destset_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"destset"
	"destset/internal/dataset"
	"destset/internal/workload"
)

// timingScale keeps the execution-driven equivalence runs fast.
const (
	timingWarm    = 6_000
	timingMeasure = 6_000
)

// figureSimSpecs is the six-configuration Figure 7/8 sweep as SimSpecs.
func figureSimSpecs(cpu destset.CPUModel) []destset.SimSpec {
	specs := []destset.SimSpec{
		{Protocol: destset.ProtocolSnooping, CPU: cpu},
		{Protocol: destset.ProtocolDirectory, CPU: cpu},
	}
	for _, pol := range []destset.Policy{
		destset.Owner, destset.BroadcastIfShared, destset.Group, destset.OwnerGroup,
	} {
		specs = append(specs, destset.SimSpec{
			Protocol: destset.ProtocolMulticast,
			Policy:   pol, UsePolicy: true,
			CPU: cpu,
		})
	}
	return specs
}

// legacySimConfigs hand-builds the same six configurations the way the
// pre-SimSpec experiments did.
func legacySimConfigs(cpu destset.CPUModel, nodes int) []destset.SimConfig {
	cfgs := []destset.SimConfig{
		destset.DefaultSimConfig(destset.SimSnooping),
		destset.DefaultSimConfig(destset.SimDirectory),
	}
	for _, pol := range []destset.Policy{
		destset.Owner, destset.BroadcastIfShared, destset.Group, destset.OwnerGroup,
	} {
		c := destset.DefaultSimConfig(destset.SimMulticast)
		c.Predictor = destset.DefaultPredictorConfig(pol, nodes)
		cfgs = append(cfgs, c)
	}
	for i := range cfgs {
		cfgs[i].CPU = cpu
	}
	return cfgs
}

// TestTimingRunnerMatchesLegacySim is the spec-driven timing equivalence
// budget: for all six Figure 7/8 configurations on both CPU models, the
// SimSpec/TimingRunner path must reproduce the legacy sim.Run results
// bit-identically — same runtime, traffic, latency percentiles and retry
// counts — at parallelism 1 and parallelism N, and under both source
// kinds (the runner's zero-copy dataset regions versus materialized
// legacy traces).
func TestTimingRunnerMatchesLegacySim(t *testing.T) {
	p, err := workload.Preset("oltp", 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.GetShared(p, timingWarm, timingMeasure)
	if err != nil {
		t.Fatal(err)
	}
	warmTr, timedTr := d.WarmTrace(), d.MeasureTrace()

	for _, cpu := range []destset.CPUModel{destset.SimpleCPU, destset.DetailedCPU} {
		cfgs := legacySimConfigs(cpu, p.Nodes)
		legacy := make([]destset.SimResult, len(cfgs))
		for i, cfg := range cfgs {
			res, err := destset.RunTiming(cfg, warmTr, timedTr)
			if err != nil {
				t.Fatal(err)
			}
			legacy[i] = res
		}

		specs := figureSimSpecs(cpu)
		wl := []destset.WorkloadSpec{{Name: "oltp", Warm: timingWarm, Measure: timingMeasure}}
		for _, par := range []int{1, 8} {
			res, err := destset.NewTimingRunner(specs, wl,
				destset.WithSeeds(1),
				destset.WithParallelism(par),
			).Run(context.Background())
			if err != nil {
				t.Fatalf("cpu=%v parallelism=%d: %v", cpu, par, err)
			}
			if len(res) != len(cfgs) {
				t.Fatalf("cpu=%v parallelism=%d: %d results, want %d", cpu, par, len(res), len(cfgs))
			}
			for i := range res {
				if res[i].Config != cfgs[i].Name() {
					t.Errorf("cpu=%v parallelism=%d cell %d: config %q, legacy %q",
						cpu, par, i, res[i].Config, cfgs[i].Name())
				}
				if res[i].Result != legacy[i] {
					t.Errorf("cpu=%v parallelism=%d %s: runner result diverges from legacy sim.Run\n runner: %+v\n legacy: %+v",
						cpu, par, res[i].Config, res[i].Result, legacy[i])
				}
				if res[i].CPU != cpu.String() || res[i].Workload != "oltp" || res[i].Seed != 1 {
					t.Errorf("cell metadata wrong: %+v", res[i])
				}
			}
		}
	}
}

// TestTimingRunnerCancellation: a canceled context must stop the sweep
// promptly and return the completed prefix-consistent subset of cells,
// each bit-identical to the uncancelled sweep's value for the same
// coordinates, in deterministic (spec-major) order.
func TestTimingRunnerCancellation(t *testing.T) {
	specs := figureSimSpecs(destset.SimpleCPU)
	wl := []destset.WorkloadSpec{{Name: "oltp", Warm: timingWarm, Measure: timingMeasure}}

	full, err := destset.NewTimingRunner(specs, wl, destset.WithSeeds(1)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byConfig := make(map[string]destset.TimingResult, len(full))
	for _, r := range full {
		byConfig[r.Config] = r
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int32
	partial, err := destset.NewTimingRunner(specs, wl,
		destset.WithSeeds(1),
		destset.WithParallelism(2),
		destset.WithTimingObserver(func(destset.TimingObservation) {
			if seen.Add(1) == 2 {
				cancel() // cancel mid-sweep, after two cells completed
			}
		}),
	).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(partial) >= len(full) {
		t.Fatalf("cancellation returned all %d cells; expected a partial sweep", len(partial))
	}
	if len(partial) == 0 {
		t.Fatal("no completed cells returned; observer saw at least two")
	}
	// Completed cells keep the deterministic spec-major order and their
	// values match the uncancelled sweep exactly.
	lastIdx := -1
	order := make(map[string]int, len(full))
	for i, r := range full {
		order[r.Config] = i
	}
	for _, r := range partial {
		i, ok := order[r.Config]
		if !ok {
			t.Fatalf("unknown cell %q in partial results", r.Config)
		}
		if i <= lastIdx {
			t.Errorf("partial results out of deterministic order: %q", r.Config)
		}
		lastIdx = i
		if r.Result != byConfig[r.Config].Result {
			t.Errorf("%s: partial cell diverges from full sweep", r.Config)
		}
	}
}

// TestTimingRunnerContextPreCancelled: an already-cancelled context runs
// nothing.
func TestTimingRunnerContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := destset.NewTimingRunner(
		figureSimSpecs(destset.SimpleCPU)[:1],
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 2_000, Measure: 2_000}},
	).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) != 0 {
		t.Fatalf("pre-cancelled run returned %d cells", len(res))
	}
}

// TestSimSpecResolveOverrides: Table-4 knob overrides land in the
// resolved config, and invalid specs fail eagerly.
func TestSimSpecResolveOverrides(t *testing.T) {
	spec := destset.SimSpec{
		Protocol:       destset.ProtocolMulticast,
		Policy:         destset.OwnerGroup,
		UsePolicy:      true,
		CPU:            destset.DetailedCPU,
		LinkBytesPerNs: 2.5,
		TraversalNs:    80,
		L2LatencyNs:    15,
		MemLatencyNs:   95,
		MSHRs:          4,
		ROBWindow:      128,
		MaxAttempts:    3,
	}
	cfg, err := spec.Resolve(16)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Interconnect.BytesPerNs != 2.5 || cfg.MSHRs != 4 || cfg.ROBWindow != 128 || cfg.MaxAttempts != 3 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
	if cfg.L2Latency.Nanoseconds() != 15 || cfg.MemLatency.Nanoseconds() != 95 || cfg.Interconnect.Traversal.Nanoseconds() != 80 {
		t.Errorf("latency overrides not applied: %+v", cfg)
	}
	if cfg.CPU != destset.DetailedCPU || cfg.Predictor.Policy != destset.OwnerGroup {
		t.Errorf("cpu/policy not applied: %+v", cfg)
	}
	if got := spec.DisplayLabel(); got != "multicast+ownergroup" {
		t.Errorf("label = %q", got)
	}

	if _, err := (destset.SimSpec{Protocol: destset.ProtocolPredictiveDirectory}).Resolve(16); err == nil {
		t.Error("timing model should reject non-simulatable engines")
	}
	if _, err := (destset.SimSpec{}).Resolve(16); err == nil {
		t.Error("empty spec should fail")
	}
	if _, err := (destset.SimSpec{Protocol: destset.ProtocolMulticast, PolicyName: "nosuch"}).Resolve(16); err == nil {
		t.Error("unknown policy should fail")
	}
}

// TestTimingRunnerRegisteredPolicyName: the registry path (PolicyName)
// reaches the timing model and reproduces the by-value policy's results
// exactly, for built-in names.
func TestTimingRunnerRegisteredPolicyName(t *testing.T) {
	wl := []destset.WorkloadSpec{{Name: "barnes-hut", Warm: 4_000, Measure: 4_000}}
	byValue, err := destset.EvaluateTiming(context.Background(),
		destset.SimSpec{Protocol: destset.ProtocolMulticast, Policy: destset.Group, UsePolicy: true},
		wl[0])
	if err != nil {
		t.Fatal(err)
	}
	byName, err := destset.EvaluateTiming(context.Background(),
		destset.SimSpec{Protocol: destset.ProtocolMulticast, PolicyName: "group"},
		wl[0])
	if err != nil {
		t.Fatal(err)
	}
	if byName != byValue {
		t.Errorf("PolicyName path diverges from Policy path:\n name:  %+v\n value: %+v", byName, byValue)
	}
}

// TestTimingObservationsJSONLRoundTrip: the observer sink spills timing
// cells as JSON Lines and ReadTimingObservations recovers them.
func TestTimingObservationsJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := destset.NewJSONLObserver(&buf)
	specs := figureSimSpecs(destset.SimpleCPU)[:2]
	res, err := destset.NewTimingRunner(specs,
		[]destset.WorkloadSpec{{Name: "ocean", Warm: 3_000, Measure: 3_000}},
		destset.WithTimingObserver(sink.ObserveTiming),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := destset.ReadTimingObservations(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res) {
		t.Fatalf("decoded %d observations, want %d", len(got), len(res))
	}
	want := make(map[string]destset.TimingResult, len(res))
	for _, r := range res {
		want[r.Config] = r
	}
	for _, o := range got {
		if o != want[o.Config] {
			t.Errorf("%s: decoded observation diverges:\n got:  %+v\n want: %+v", o.Config, o, want[o.Config])
		}
	}
}
