package destset

import "destset/internal/dataset"

// The Runner resolves every Name- or Params-based WorkloadSpec through a
// process-wide dataset store: each (workload, seed, warm, measure) trace
// is generated once, annotated by the coherence oracle once, and then
// replayed by every sweep cell — and by every later Runner — through
// zero-copy cursors. Custom Open sources bypass the store.
//
// The store is tiered. The memory tier is always on; SetDatasetDir adds
// a persistent on-disk tier behind it: generated datasets are spilled to
// a content-addressed, versioned columnar file (trace and annotations
// both), and memory misses reload from disk — zero-copy — instead of
// regenerating. Point every process of a sharded sweep at the same
// directory and cold starts cost one file read per dataset. The
// functions below manage both tiers.

// DatasetStats are the shared dataset store's per-tier counters since
// process start, plus its resident memory-tier footprint. A process
// whose Generations stays zero did all its work from cache — the
// cold-start property a warm dataset directory provides.
type DatasetStats = dataset.Stats

// DatasetCacheStats reports the shared dataset store's per-tier
// hit/miss/generation counters and resident memory footprint.
func DatasetCacheStats() DatasetStats {
	return dataset.Shared.Stats()
}

// SetDatasetDir configures the shared store's on-disk dataset tier
// rooted at dir, creating the directory if needed; "" disables the
// tier. See the package comment above for the tiering contract, and
// EXPERIMENTS.md for the on-disk layout.
func SetDatasetDir(dir string) error { return dataset.Shared.SetDir(dir) }

// DatasetDir returns the configured on-disk dataset directory ("" when
// disabled).
func DatasetDir() string { return dataset.Shared.Dir() }

// PurgeDatasets drops every cached dataset from the memory tier and
// returns how many were dropped. The disk tier is deliberately not
// touched: spilled files remain valid, and purged keys reload from disk
// on next use (a disk hit, not a regeneration). Results are unaffected
// either way — generation is deterministic. Use PurgeDatasetDir to drop
// the disk tier.
func PurgeDatasets() int { return dataset.Shared.Purge() }

// PurgeDatasetDir removes every dataset file from the configured disk
// tier and returns how many were removed; it is a no-op without a
// configured directory. Memory-tier residents are unaffected, so a
// process can clear stale disk space without giving up its warm cache.
func PurgeDatasetDir() (int, error) { return dataset.Shared.PurgeDir() }

// SetDatasetCacheLimit caps the shared dataset store's resident
// memory-tier bytes; 0 restores the default (unbounded). Over-limit
// inserts evict the least-recently-used datasets, which transparently
// reload from the disk tier (or regenerate) on next use.
func SetDatasetCacheLimit(bytes int64) { dataset.Shared.SetLimit(bytes) }

// SetDatasetMmap enables or disables the shared store's mmap disk path.
// It is on by default where the platform supports it: disk loads map
// the file and alias the columns zero-copy, so cold-start residency is
// proportional to the region actually replayed and co-located processes
// share one page-cache copy. Platforms without mmap (or big-endian
// hosts) use the ReadFile copy path regardless of this setting.
// DatasetCacheStats reports the mapped footprint (MappedBytes) and
// mmap-served disk hits (MapHits).
func SetDatasetMmap(on bool) { dataset.Shared.SetMmap(on) }
