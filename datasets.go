package destset

import "destset/internal/dataset"

// The Runner resolves every Name- or Params-based WorkloadSpec through a
// process-wide dataset store: each (workload, seed, warm, measure) trace
// is generated once, annotated by the coherence oracle once, and then
// replayed by every sweep cell — and by every later Runner — through
// zero-copy cursors. Custom Open sources bypass the store. The functions
// below manage that cache.

// DatasetCacheStats reports the shared dataset store's resident dataset
// count and approximate byte footprint, plus hit/miss counters since
// process start.
func DatasetCacheStats() (datasets int, bytes int64, hits, misses uint64) {
	return dataset.Shared.Stats()
}

// PurgeDatasets drops every cached dataset and returns how many were
// dropped. Subsequent sweeps regenerate on demand; results are
// unaffected (generation is deterministic).
func PurgeDatasets() int { return dataset.Shared.Purge() }

// SetDatasetCacheLimit caps the shared dataset store's resident bytes;
// 0 restores the default (unbounded). Over-limit inserts evict the
// least-recently-used datasets, which transparently regenerate on next
// use.
func SetDatasetCacheLimit(bytes int64) { dataset.Shared.SetLimit(bytes) }
