// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus micro-benchmarks of the performance-critical
// components. Each macro-benchmark runs its experiment harness at
// reduced scale per iteration and reports the experiment's headline
// metric alongside time and allocations:
//
//	go test -bench=. -benchmem
//
// For paper-scale numbers use the CLI tools (cmd/sharing, cmd/traceeval,
// cmd/timing) instead; EXPERIMENTS.md records those results.
package destset_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"destset"
	"destset/internal/dataset"
	"destset/internal/distrib"
	"destset/internal/experiments"
	"destset/internal/ingest"
	"destset/internal/nodeset"
	"destset/internal/predictor"
	"destset/internal/protocol"
	"destset/internal/trace"
	"destset/internal/workload"
)

// benchOptions is the per-iteration experiment scale.
func benchOptions() experiments.Options {
	return experiments.Options{
		Seed:            1,
		WarmMisses:      20_000,
		Misses:          20_000,
		TimedWarmMisses: 8_000,
		TimedMisses:     8_000,
	}
}

func BenchmarkTable2(b *testing.B) {
	opt := benchOptions()
	var last []experiments.Characterization
	for i := 0; i < b.N; i++ {
		cs, err := experiments.Characterize(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = cs
	}
	for _, c := range last {
		if c.Workload == "oltp" {
			b.ReportMetric(c.DirIndirectPc, "oltp-dir-indirect-%")
			b.ReportMetric(c.MPKI, "oltp-mpki")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	opt := benchOptions()
	opt.Workloads = []string{"apache", "oltp"}
	var last []experiments.Characterization
	for i := 0; i < b.N; i++ {
		cs, err := experiments.Characterize(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = cs
	}
	b.ReportMetric(last[0].ReadsMustSee[1], "apache-reads-see1-%")
}

func BenchmarkFigure3(b *testing.B) {
	opt := benchOptions()
	opt.Workloads = []string{"ocean", "specjbb"}
	var last []experiments.Characterization
	for i := 0; i < b.N; i++ {
		cs, err := experiments.Characterize(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = cs
	}
	b.ReportMetric(last[0].BlocksTouchedBy[2], "ocean-pairwise-blocks-%")
}

func BenchmarkFigure4(b *testing.B) {
	opt := benchOptions()
	opt.Workloads = []string{"specjbb"}
	var last []experiments.Characterization
	for i := 0; i < b.N; i++ {
		cs, err := experiments.Characterize(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = cs
	}
	// Cumulative c2c coverage of the hottest 1000 blocks (paper: ~80%).
	b.ReportMetric(last[0].C2CByHotBlocks[4], "jbb-hot1k-blocks-%")
}

func BenchmarkFigure5(b *testing.B) {
	opt := benchOptions()
	var last []experiments.WorkloadTradeoff
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure5(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = panels
	}
	for _, p := range last {
		if p.Workload != "oltp" {
			continue
		}
		for _, pt := range p.Points {
			if pt.Config == "Multicast+Group[1024B,8192e]" {
				b.ReportMetric(pt.IndirectionPct, "oltp-group-indirect-%")
				b.ReportMetric(pt.MsgsPerMiss, "oltp-group-msgs/miss")
			}
		}
	}
}

func BenchmarkFigure6a(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6a(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6b(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6b(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6c(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6c(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	opt := benchOptions()
	opt.Workloads = []string{"oltp"}
	var last []experiments.WorkloadTiming
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure7(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		last = panels
	}
	for _, pt := range last[0].Points {
		if pt.Config == "snooping" {
			b.ReportMetric(pt.NormRuntime, "oltp-snoop-norm-runtime")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	opt := benchOptions()
	opt.Workloads = []string{"oltp"}
	var last []experiments.WorkloadTiming
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure8(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		last = panels
	}
	for _, pt := range last[0].Points {
		if pt.Config == "snooping" {
			b.ReportMetric(pt.NormRuntime, "oltp-snoop-norm-runtime")
		}
	}
}

// BenchmarkDatasetColdStart measures a cold process start against a
// warm on-disk dataset tier: per iteration a fresh store (no memory
// residents, as after exec) resolves the oltp dataset from the
// content-addressed cache. This pins the *copy* path (mmap off) — the
// read-whole-file baseline BenchmarkDatasetColdStartMmap's zero-copy
// mapping is measured against; both are the price a shard process pays
// instead of a full regeneration through the coherence oracle (compare
// BenchmarkWorkloadGenerate × 40k misses).
func BenchmarkDatasetColdStart(b *testing.B) {
	benchDatasetColdStart(b, false)
}

// BenchmarkDatasetColdStartMmap is BenchmarkDatasetColdStart over the
// mmap tier: the same cold-store load served by a page-cache mapping
// that the columns alias zero-copy, so B/op stays constant while the
// copy path's scales with the file.
func BenchmarkDatasetColdStartMmap(b *testing.B) {
	benchDatasetColdStart(b, true)
}

func benchDatasetColdStart(b *testing.B, mmap bool) {
	dir := b.TempDir()
	p, err := workload.Preset("oltp", 1)
	if err != nil {
		b.Fatal(err)
	}
	const warm, measure = 20_000, 20_000
	key := dataset.KeyOf(p, warm, measure)
	gen := func() (*dataset.Dataset, error) { return dataset.Generate(p, warm, measure) }
	seed := dataset.NewStore()
	if err := seed.SetDir(dir); err != nil {
		b.Fatal(err)
	}
	if _, err := seed.Get(key, gen); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold := dataset.NewStore()
		cold.SetMmap(mmap)
		if err := cold.SetDir(dir); err != nil {
			b.Fatal(err)
		}
		ds, err := cold.Get(key, gen)
		if err != nil {
			b.Fatal(err)
		}
		st := cold.Stats()
		if st.Generations != 0 || st.DiskHits != 1 {
			b.Fatalf("cold start did not load from disk: %+v", st)
		}
		if mmap && st.MapHits != 1 {
			b.Fatalf("cold start did not come from the mmap tier: %+v", st)
		}
		if ds.Len() != warm+measure {
			b.Fatal("short dataset")
		}
	}
	b.ReportMetric(float64(warm+measure), "misses")
}

// BenchmarkDatasetFetch measures the dataset fabric's wire path: per
// iteration one content-addressed fetch from the coordinator's
// GET /v1/dataset/{key} endpoint — file stream over in-memory HTTP,
// full receipt validation (header, CRC, key identity) and atomic
// install — the one-time cost a mountless worker pays per dataset
// before mmap loads take over.
func BenchmarkDatasetFetch(b *testing.B) {
	def := destset.NewTimingSweepDef(
		[]destset.SimSpec{{Protocol: destset.ProtocolSnooping}},
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 20_000, Measure: 20_000}},
		destset.WithSeeds(1),
	)
	datasets, err := def.Datasets()
	if err != nil {
		b.Fatal(err)
	}
	sd := datasets[0]
	key, err := sd.ContentKey()
	if err != nil {
		b.Fatal(err)
	}
	serveDir := b.TempDir()
	if _, err := sd.SpillTo(serveDir); err != nil { // materialize once; GETs stream the file
		b.Fatal(err)
	}
	coord, err := distrib.NewCoordinator(distrib.Config{Def: def, LeaseTTL: time.Minute, DatasetDir: serveDir})
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	l := distrib.NewMemListener()
	srv := &http.Server{Handler: distrib.NewHandler(coord)}
	go srv.Serve(l)
	defer srv.Close()
	client := l.Client()
	installDir := b.TempDir()
	url := "http://coordinator/v1/dataset/" + key

	b.ResetTimer()
	var bytesFetched int64
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("fetch status %d", resp.StatusCode)
		}
		n, err := sd.InstallTo(installDir, resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		bytesFetched = n
	}
	b.ReportMetric(float64(bytesFetched), "bytes")
}

// BenchmarkDatasetFetchP2P measures the peer fabric's fan-out: per
// iteration eight simulated workers resolve the same ~1.6MB dataset —
// each asks /v1/holders first, pulls from the hinted peer when one
// exists and from the coordinator otherwise, installs with full receipt
// validation, then serves and announces its own copy. The coordinator
// uplink streams the bytes roughly once; the other seven transfers ride
// peers. coord_B/op vs peer_B/op is the uplink relief the fabric buys —
// compare BenchmarkDatasetFetch, where every transfer is the uplink.
func BenchmarkDatasetFetchP2P(b *testing.B) {
	def := destset.NewTimingSweepDef(
		[]destset.SimSpec{{Protocol: destset.ProtocolSnooping}},
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 20_000, Measure: 20_000}},
		destset.WithSeeds(1),
	)
	datasets, err := def.Datasets()
	if err != nil {
		b.Fatal(err)
	}
	sd := datasets[0]
	key, err := sd.ContentKey()
	if err != nil {
		b.Fatal(err)
	}
	plan, err := def.Plan()
	if err != nil {
		b.Fatal(err)
	}
	planFP := plan.Fingerprint()
	serveDir := b.TempDir()
	if _, err := sd.SpillTo(serveDir); err != nil { // materialize once; GETs stream the file
		b.Fatal(err)
	}
	const workers = 8

	b.ResetTimer()
	var coordBytes, peerBytes int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := distrib.NewMemNet()
		coord, err := distrib.NewCoordinator(distrib.Config{Def: def, LeaseTTL: time.Minute, DatasetDir: serveDir})
		if err != nil {
			b.Fatal(err)
		}
		coordSrv := &http.Server{Handler: distrib.NewHandler(coord)}
		go coordSrv.Serve(net.Listen("coordinator"))
		client := net.Client()
		dirs := make([]string, workers)
		for wi := range dirs {
			dirs[wi] = b.TempDir()
		}
		peerSrvs := make([]*http.Server, 0, workers)
		b.StartTimer()

		for wi := 0; wi < workers; wi++ {
			// Hint first, exactly like the worker fetch path.
			src := "http://coordinator"
			fromPeer := false
			if resp, err := client.Get("http://coordinator/v1/holders/" + key); err == nil {
				var reply distrib.HoldersReply
				if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&reply) == nil && len(reply.Holders) > 0 {
					src = reply.Holders[0]
					fromPeer = true
				}
				resp.Body.Close()
			}
			resp, err := client.Get(src + "/v1/dataset/" + key)
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("fetch from %s: status %d", src, resp.StatusCode)
			}
			n, err := sd.InstallTo(dirs[wi], resp.Body)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			if fromPeer {
				peerBytes += n
			}
			// Become a holder: serve the installed file and announce it.
			path, err := sd.PathIn(dirs[wi])
			if err != nil {
				b.Fatal(err)
			}
			host := fmt.Sprintf("w%d", wi)
			mux := http.NewServeMux()
			mux.HandleFunc("GET /v1/dataset/{key}", func(w http.ResponseWriter, r *http.Request) {
				http.ServeFile(w, r, path)
			})
			srv := &http.Server{Handler: mux}
			go srv.Serve(net.Listen(host))
			peerSrvs = append(peerSrvs, srv)
			body, _ := json.Marshal(map[string]any{
				"worker": host, "plan": planFP, "peer": "http://" + host, "holds": []string{key},
			})
			aresp, err := client.Post("http://coordinator/v1/announce", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			aresp.Body.Close()
		}

		b.StopTimer()
		coordBytes += coord.Progress().DatasetBytesServed
		for _, srv := range peerSrvs {
			srv.Close()
		}
		coordSrv.Close()
		coord.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(coordBytes)/float64(b.N), "coord_B/op")
	b.ReportMetric(float64(peerBytes)/float64(b.N), "peer_B/op")
}

// BenchmarkResultStoreLookup measures a cold process start against a
// warm on-disk result tier: per iteration a fresh store (no memory
// residents, as after exec) resolves every cell of a small timing plan
// from the content-addressed result cache — the runner-side lookup an
// incremental rerun pays per cell instead of simulating it (compare
// BenchmarkFigure7, which is the computation a hit skips).
func BenchmarkResultStoreLookup(b *testing.B) {
	dir := b.TempDir()
	def := destset.NewTimingSweepDef(
		[]destset.SimSpec{
			{Protocol: destset.ProtocolSnooping},
			{Protocol: destset.ProtocolDirectory},
		},
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 4_000, Measure: 4_000}},
		destset.WithSeeds(1, 2),
	)
	plan, err := def.Plan()
	if err != nil {
		b.Fatal(err)
	}
	seed := destset.NewResultStore()
	if err := seed.SetDir(dir); err != nil {
		b.Fatal(err)
	}
	r, err := def.TimingRunner(destset.WithResultStore(seed))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.Run(context.Background()); err != nil {
		b.Fatal(err)
	}
	cells := plan.Cells()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold := destset.NewResultStore()
		if err := cold.SetDir(dir); err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if !cold.HasCell(plan.Kind(), c.Fingerprint) {
				b.Fatalf("cell %s not served from the warm result dir", c.Fingerprint)
			}
		}
		if st := cold.Stats(); st.DiskHits != uint64(len(cells)) {
			b.Fatalf("cold lookup stats: %+v", st)
		}
	}
	b.ReportMetric(float64(len(cells)), "cells")
}

// --- component micro-benchmarks ---

func BenchmarkPredictorPredict(b *testing.B) {
	for _, pol := range []predictor.Policy{predictor.Owner, predictor.Group, predictor.OwnerGroup} {
		b.Run(pol.String(), func(b *testing.B) {
			p := predictor.New(predictor.DefaultConfig(pol, 16))
			for i := 0; i < 1000; i++ {
				p.TrainRequest(predictor.External{
					Addr:      trace.Addr(i * 7 % 4096),
					Requester: nodeset.NodeID(i % 16),
					Kind:      trace.GetExclusive,
				})
			}
			q := predictor.Query{Addr: 42, Requester: 3, Home: 10, Kind: trace.GetExclusive}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Addr = trace.Addr(i % 4096)
				_ = p.Predict(q)
			}
		})
	}
}

func BenchmarkPredictorTrain(b *testing.B) {
	p := predictor.New(predictor.DefaultConfig(predictor.Group, 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TrainRequest(predictor.External{
			Addr:      trace.Addr(i % 8192),
			Requester: nodeset.NodeID(i % 16),
			Kind:      trace.GetExclusive,
		})
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	p, err := workload.Preset("oltp", 1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := workload.New(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.Next()
	}
	b.ReportMetric(float64(b.N), "misses")
}

func BenchmarkProtocolMulticastProcess(b *testing.B) {
	p, _ := workload.Preset("apache", 1)
	g, err := workload.New(p)
	if err != nil {
		b.Fatal(err)
	}
	tr, infos := g.Generate(100_000)
	eng := protocol.NewMulticast(predictor.NewBank(predictor.DefaultConfig(predictor.Group, 16)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % tr.Len()
		eng.Process(tr.Records[j], infos[j])
	}
}

func BenchmarkTraceEncodeDecode(b *testing.B) {
	p, _ := workload.Preset("ocean", 1)
	g, err := workload.New(p)
	if err != nil {
		b.Fatal(err)
	}
	tr, _ := g.Generate(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.WriteAll(&buf, tr); err != nil {
			b.Fatal(err)
		}
		r, err := trace.NewReader(&buf)
		if err != nil {
			b.Fatal(err)
		}
		got, err := r.ReadAll()
		if err != nil {
			b.Fatal(err)
		}
		if got.Len() != tr.Len() {
			b.Fatal("length mismatch")
		}
	}
}

// BenchmarkLeaseDispatch measures the distributed coordinator's
// lease/complete round trip — the protocol hot path every worker drives
// between cells — over real HTTP on an in-memory listener: per
// iteration, one lease grant (queue pop, deadline stamp) plus one
// single-cell record upload (streamed parse, cell attribution, commit).
func BenchmarkLeaseDispatch(b *testing.B) {
	seeds := make([]uint64, b.N)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	def := destset.NewTimingSweepDef(
		[]destset.SimSpec{{Protocol: destset.ProtocolSnooping}},
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 100, Measure: 100}},
		destset.WithSeeds(seeds...),
	)
	coord, err := distrib.NewCoordinator(distrib.Config{Def: def, LeaseTTL: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	l := distrib.NewMemListener()
	srv := &http.Server{Handler: distrib.NewHandler(coord)}
	go srv.Serve(l)
	defer srv.Close()
	client := l.Client()
	plan := coord.Plan()
	leaseBody, err := json.Marshal(map[string]string{"worker": "bench", "plan": plan.Fingerprint()})
	if err != nil {
		b.Fatal(err)
	}
	completeURL := "http://coordinator/v1/complete?lease=%s&worker=bench&plan=" + plan.Fingerprint()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post("http://coordinator/v1/lease", "application/json", bytes.NewReader(leaseBody))
		if err != nil {
			b.Fatal(err)
		}
		var reply distrib.LeaseReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if reply.Lease == nil {
			b.Fatalf("iteration %d: no lease (reply %+v)", i, reply)
		}
		cell := plan.Cell(reply.Lease.Lo)
		rec := fmt.Sprintf("{\"Sim\":%q,\"Workload\":%q,\"Seed\":%d}\n", cell.Engine, cell.Workload, cell.Seed)
		resp, err = client.Post(fmt.Sprintf(completeURL, reply.Lease.ID), "application/x-ndjson", bytes.NewReader([]byte(rec)))
		if err != nil {
			b.Fatal(err)
		}
		var cr distrib.CompleteReply
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if !cr.Accepted {
			b.Fatalf("iteration %d: completion not accepted (%+v)", i, cr)
		}
	}
}

// BenchmarkIngestCSV measures the external-trace import path: parsing a
// 20k-line CSV trace and replaying it through the coherence oracle into
// an annotated columnar dataset (internal/ingest). SetBytes reports
// parse+annotate throughput over the raw input bytes.
func BenchmarkIngestCSV(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("addr,cpu,op,pc,gap\n")
	state := uint64(0x9e3779b97f4a7c15)
	const lines = 20_000
	for i := 0; i < lines; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		fmt.Fprintf(&sb, "0x%x,%d,%s,0x%x,%d\n",
			0x10000+(state>>9%512)*64, state%8, []string{"R", "W"}[state>>20&1],
			0x40000+4*(state>>24%1024), 100+state>>40%300)
	}
	in := sb.String()
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := ingest.Import(strings.NewReader(in), ingest.FormatCSV,
			ingest.Options{Name: "bench-import", Warm: 5_000})
		if err != nil {
			b.Fatal(err)
		}
		if ds.Len() != lines {
			b.Fatalf("imported %d records, want %d", ds.Len(), lines)
		}
	}
	b.ReportMetric(lines, "records")
}
