package destset

import (
	"fmt"

	"destset/internal/event"
	"destset/internal/predictor"
	"destset/internal/sim"
)

// SimSpec is a value description of one execution-driven timing
// configuration: which coherence protocol to simulate, which prediction
// policy drives multicast destination sets, which processor model issues
// the misses, and any Table-4 knob overrides (link bandwidth, latencies,
// MSHRs, ...). Specs are inert data — the TimingRunner resolves a fresh
// sim.Config from the spec for every sweep cell, so the same spec can
// appear in many concurrent runs.
//
// SimSpec mirrors EngineSpec: the same protocol names, the same three
// ways to pick a policy (PolicyName through the registry, Policy by
// value, or an explicit Predictor configuration), the same defaulting to
// the paper's standout predictor. The timing model simulates the three
// paper protocols (snooping, directory, multicast snooping); registered
// custom *policies* are fully supported via PolicyName, registered
// custom *engines* are not, because the timing model needs the message
// semantics of the protocol, not just its accounting.
type SimSpec struct {
	// Protocol is ProtocolSnooping, ProtocolDirectory or
	// ProtocolMulticast. Empty selects ProtocolMulticast when a policy is
	// configured and is an error otherwise.
	Protocol string
	// PolicyName is a registered prediction policy name ("owner",
	// "group", a custom RegisterPolicy name, ...). Built-in names are
	// matched case-insensitively.
	PolicyName string
	// Policy selects a built-in policy by value; it is consulted only
	// when PolicyName is empty and Predictor is nil.
	Policy Policy
	// UsePolicy marks the Policy field as intentionally set (the zero
	// Policy is Owner, so a flag is needed to distinguish "unset").
	UsePolicy bool
	// Predictor overrides the predictor configuration. Nil uses the
	// paper's standout configuration (DefaultPredictorConfig) for the
	// selected policy. The Nodes field may be left 0 to inherit the
	// workload's node count.
	Predictor *PredictorConfig
	// CPU selects the processor model (§5.2): SimpleCPU (the zero value)
	// or DetailedCPU.
	CPU CPUModel
	// Nodes overrides the system size; 0 inherits the workload's.
	Nodes int

	// Table-4 knob overrides. Zero values keep the paper's target system
	// (10 B/ns links, 50 ns traversal, 12 ns L2, 80 ns memory, 64-entry
	// ROB, 8 MSHRs, 4 attempts).
	//
	// LinkBytesPerNs is the per-link bandwidth in bytes per nanosecond.
	LinkBytesPerNs float64
	// TraversalNs is the unloaded node-to-node interconnect latency.
	TraversalNs float64
	// L2LatencyNs is the owner's cache lookup before responding.
	L2LatencyNs float64
	// MemLatencyNs is the DRAM/directory access latency at the home.
	MemLatencyNs float64
	// MSHRs bounds outstanding misses per node (detailed model).
	MSHRs int
	// ROBWindow is the detailed model's reorder-buffer size.
	ROBWindow int
	// MaxAttempts bounds multicast retries (the last attempt broadcasts).
	MaxAttempts int

	// Label overrides the spec's display label in results and
	// observations; empty derives one from the protocol and policy.
	Label string
}

// simProtocol maps the registry protocol name onto the timing model's
// protocol enum.
func (s SimSpec) simProtocol() (sim.Protocol, error) {
	name := s.Protocol
	if name == "" {
		if s.hasPolicy() {
			return sim.Multicast, nil
		}
		return 0, fmt.Errorf("destset: sim spec needs a protocol or a policy")
	}
	switch name {
	case ProtocolSnooping:
		return sim.Snooping, nil
	case ProtocolDirectory:
		return sim.Directory, nil
	case ProtocolMulticast:
		return sim.Multicast, nil
	default:
		return 0, fmt.Errorf("destset: timing model cannot simulate engine %q (supported: %s, %s, %s)",
			name, ProtocolSnooping, ProtocolDirectory, ProtocolMulticast)
	}
}

func (s SimSpec) hasPolicy() bool {
	return s.PolicyName != "" || s.UsePolicy || s.Predictor != nil
}

// DisplayLabel returns the label used for this spec in results and
// observations.
func (s SimSpec) DisplayLabel() string {
	if s.Label != "" {
		return s.Label
	}
	name := s.Protocol
	if name == "" && s.hasPolicy() {
		name = ProtocolMulticast
	}
	if name == "" {
		name = "sim"
	}
	switch {
	case s.PolicyName != "":
		return name + "+" + predictor.CanonicalName(s.PolicyName)
	case s.UsePolicy:
		return name + "+" + predictor.CanonicalName(s.Policy.String())
	case s.Predictor != nil:
		return name + "+" + predictor.CanonicalName(s.Predictor.Policy.String())
	default:
		return name
	}
}

// validate resolves the spec's names eagerly, so that a typo'd policy or
// protocol fails before any sweep work starts (the TimingRunner calls it
// for every sim spec up front).
func (s SimSpec) validate() error {
	if _, err := s.simProtocol(); err != nil {
		return err
	}
	if s.PolicyName != "" {
		if _, ok := predictor.LookupFactory(s.PolicyName); !ok {
			return fmt.Errorf("destset: unknown policy %q (have %v)",
				s.PolicyName, predictor.RegisteredPolicies())
		}
	}
	if s.LinkBytesPerNs < 0 || s.TraversalNs < 0 || s.L2LatencyNs < 0 || s.MemLatencyNs < 0 ||
		s.MSHRs < 0 || s.ROBWindow < 0 || s.MaxAttempts < 0 {
		return fmt.Errorf("destset: sim spec %q has a negative knob override", s.DisplayLabel())
	}
	return nil
}

// nsTime converts a float nanosecond knob to simulator time.
func nsTime(ns float64) event.Time {
	return event.Time(ns * float64(event.Nanosecond))
}

// Resolve turns the spec into a concrete sim.Config for a system of the
// given node count (0 uses the spec's own Nodes, which must then be
// set). The result starts from the paper's Table 4 target
// (DefaultSimConfig) and applies the spec's overrides.
func (s SimSpec) Resolve(nodes int) (SimConfig, error) {
	if s.Nodes > 0 {
		nodes = s.Nodes
	}
	if nodes <= 0 {
		return SimConfig{}, fmt.Errorf("destset: sim spec %q needs a node count", s.DisplayLabel())
	}
	proto, err := s.simProtocol()
	if err != nil {
		return SimConfig{}, err
	}
	cfg := sim.DefaultConfig(proto)
	cfg.Nodes = nodes
	cfg.Interconnect.Nodes = nodes
	cfg.Coherence.Nodes = nodes
	cfg.CPU = sim.CPUModel(s.CPU)
	// A multicast spec without an explicit policy keeps DefaultConfig's
	// predictor (the paper's standout Group configuration).
	if proto == sim.Multicast && s.hasPolicy() {
		pc := predictor.DefaultConfig(s.Policy, nodes)
		if s.Predictor != nil {
			pc = *s.Predictor
			if pc.Nodes == 0 {
				pc.Nodes = nodes
			}
		}
		cfg.Predictor = pc
		if s.PolicyName != "" {
			factory, ok := predictor.LookupFactory(s.PolicyName)
			if !ok {
				return SimConfig{}, fmt.Errorf("destset: unknown policy %q (have %v)",
					s.PolicyName, predictor.RegisteredPolicies())
			}
			bankCfg := pc
			cfg.NewBank = func() []predictor.Predictor {
				bank := make([]predictor.Predictor, bankCfg.Nodes)
				for i := range bank {
					bank[i] = factory(bankCfg)
				}
				return bank
			}
			cfg.Label = "Multicast+" + predictor.CanonicalName(s.PolicyName)
		}
	}
	if s.LinkBytesPerNs > 0 {
		cfg.Interconnect.BytesPerNs = s.LinkBytesPerNs
	}
	if s.TraversalNs > 0 {
		cfg.Interconnect.Traversal = nsTime(s.TraversalNs)
	}
	if s.L2LatencyNs > 0 {
		cfg.L2Latency = nsTime(s.L2LatencyNs)
	}
	if s.MemLatencyNs > 0 {
		cfg.MemLatency = nsTime(s.MemLatencyNs)
	}
	if s.MSHRs > 0 {
		cfg.MSHRs = s.MSHRs
	}
	if s.ROBWindow > 0 {
		cfg.ROBWindow = s.ROBWindow
	}
	if s.MaxAttempts > 0 {
		cfg.MaxAttempts = s.MaxAttempts
	}
	if s.Label != "" {
		cfg.Label = s.Label
	}
	return cfg, nil
}
