package destset

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"destset/internal/dataset"
	"destset/internal/sweep"
	"destset/internal/workload"
)

// Serializable sweep definitions. A SweepDef is the wire form of a
// Runner or TimingRunner configuration: the specs, workloads, seeds and
// scale — everything that determines the sweep plan, and nothing that is
// local to one process (parallelism, observers, shard selection).
// Marshal it, ship it to another machine, unmarshal it, and the rebuilt
// runner computes a byte-identical SweepPlan — the property the
// distributed coordinator/worker protocol (internal/distrib, cmd/sweepd)
// is built on: the coordinator serves its def, every worker reconstructs
// the cell index space from it, and the plan fingerprint is the
// handshake that proves they agree.
//
// Only value-described workloads serialize: a WorkloadSpec with a custom
// Open stream source refuses to marshal, since a function cannot cross a
// process boundary.

// SweepDef is a serializable sweep definition of either kind. Exactly
// one of Engines (PlanKindTrace) or Sims (PlanKindTiming) applies,
// matching Kind.
type SweepDef struct {
	// Kind is PlanKindTrace or PlanKindTiming.
	Kind string `json:"kind"`
	// Engines are the trace-driven engine specs (Kind == PlanKindTrace).
	Engines []EngineSpec `json:"engines,omitempty"`
	// Sims are the execution-driven sim specs (Kind == PlanKindTiming).
	Sims []SimSpec `json:"sims,omitempty"`
	// Workloads are the swept workloads. Custom Open sources are not
	// serializable and refused by Validate and MarshalJSON.
	Workloads []WorkloadSpec `json:"workloads"`
	// Seeds are the per-cell workload seeds; empty means the runner
	// default {1}.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Warm and Measure are the default scale applied to workloads that
	// set none of their own: 0 means the runner defaults
	// (DefaultWarmMisses / DefaultMeasureMisses), negative means
	// explicitly none — the same contract as WithWarmup / WithMeasure.
	Warm    int `json:"warm,omitempty"`
	Measure int `json:"measure,omitempty"`
	// Interval is the trace-driven observation granularity in misses
	// (WithInterval); it folds into trace plan fingerprints and is
	// ignored by timing sweeps.
	Interval int `json:"interval,omitempty"`
}

// NewTraceSweepDef captures a trace-driven sweep as a serializable
// definition: the same engines, workloads and options NewRunner takes.
// Only the plan-affecting options are recorded (seeds, warmup, measure,
// interval); process-local ones (parallelism, observers, shard
// selection, context) are deliberately dropped — they belong to the
// process that executes, not to the sweep's identity.
func NewTraceSweepDef(engines []EngineSpec, workloads []WorkloadSpec, opts ...RunnerOption) SweepDef {
	cfg := newRunnerConfig(opts)
	return SweepDef{
		Kind:      PlanKindTrace,
		Engines:   append([]EngineSpec(nil), engines...),
		Workloads: append([]WorkloadSpec(nil), workloads...),
		Seeds:     cfg.seeds,
		Warm:      cfg.warm,
		Measure:   cfg.measure,
		Interval:  cfg.interval,
	}
}

// NewTimingSweepDef captures an execution-driven timing sweep as a
// serializable definition — the timing analogue of NewTraceSweepDef.
func NewTimingSweepDef(sims []SimSpec, workloads []WorkloadSpec, opts ...RunnerOption) SweepDef {
	cfg := newRunnerConfig(opts)
	return SweepDef{
		Kind:      PlanKindTiming,
		Sims:      append([]SimSpec(nil), sims...),
		Workloads: append([]WorkloadSpec(nil), workloads...),
		Seeds:     cfg.seeds,
		Warm:      cfg.warm,
		Measure:   cfg.measure,
	}
}

// Validate checks the definition is complete, serializable and names
// only registered protocols, policies and workloads — everything a
// worker needs to verify before executing cells from it.
func (d SweepDef) Validate() error {
	switch d.Kind {
	case PlanKindTrace:
		if len(d.Engines) == 0 {
			return fmt.Errorf("destset: trace sweep def needs at least one engine spec")
		}
		if len(d.Sims) != 0 {
			return fmt.Errorf("destset: trace sweep def must not carry sim specs")
		}
		for _, e := range d.Engines {
			if err := e.validate(); err != nil {
				return err
			}
		}
	case PlanKindTiming:
		if len(d.Sims) == 0 {
			return fmt.Errorf("destset: timing sweep def needs at least one sim spec")
		}
		if len(d.Engines) != 0 {
			return fmt.Errorf("destset: timing sweep def must not carry engine specs")
		}
		for _, s := range d.Sims {
			if err := s.validate(); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("destset: sweep def kind %q (want %q or %q)", d.Kind, PlanKindTrace, PlanKindTiming)
	}
	if len(d.Workloads) == 0 {
		return fmt.Errorf("destset: sweep def needs at least one workload spec")
	}
	for _, w := range d.Workloads {
		if w.Open != nil {
			return fmt.Errorf("destset: workload %q uses a custom Open stream source and cannot be serialized", w.label())
		}
		if w.Params == nil && w.Name == "" {
			return fmt.Errorf("destset: workload spec needs a Name or Params")
		}
		if w.Params == nil {
			if _, err := workload.Preset(w.Name, 0); err != nil {
				return err
			}
		} else if err := w.Params.Validate(); err != nil {
			return fmt.Errorf("destset: workload %q: %w", w.label(), err)
		}
	}
	return nil
}

// runnerOptions rebuilds the plan-affecting runner options the def
// records, appending the caller's process-local extras.
func (d SweepDef) runnerOptions(extra []RunnerOption) []RunnerOption {
	opts := make([]RunnerOption, 0, 4+len(extra))
	if len(d.Seeds) > 0 {
		opts = append(opts, WithSeeds(d.Seeds...))
	}
	// 0 keeps the runner defaults, exactly as an absent option would.
	if d.Warm != 0 {
		opts = append(opts, WithWarmup(d.Warm))
	}
	if d.Measure != 0 {
		opts = append(opts, WithMeasure(d.Measure))
	}
	if d.Interval != 0 {
		opts = append(opts, WithInterval(d.Interval))
	}
	return append(opts, extra...)
}

// Runner rebuilds the trace-driven Runner the definition describes.
// extra options are process-local (parallelism, observers, WithShard,
// WithCells); passing plan-affecting ones here would desynchronize this
// process from every other holder of the def, so don't.
func (d SweepDef) Runner(extra ...RunnerOption) (*Runner, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Kind != PlanKindTrace {
		return nil, fmt.Errorf("destset: sweep def kind %q is not a trace sweep", d.Kind)
	}
	return NewRunner(d.Engines, d.Workloads, d.runnerOptions(extra)...), nil
}

// TimingRunner rebuilds the execution-driven TimingRunner the definition
// describes; see Runner for the extra-options contract.
func (d SweepDef) TimingRunner(extra ...RunnerOption) (*TimingRunner, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Kind != PlanKindTiming {
		return nil, fmt.Errorf("destset: sweep def kind %q is not a timing sweep", d.Kind)
	}
	return NewTimingRunner(d.Sims, d.Workloads, d.runnerOptions(extra)...), nil
}

// Plan computes the definition's sweep plan. Every process that holds an
// equal def — however it got it, including over the wire — computes a
// byte-identical plan.
func (d SweepDef) Plan() (*SweepPlan, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Kind == PlanKindTrace {
		r, err := d.Runner()
		if err != nil {
			return nil, err
		}
		return r.Plan()
	}
	r, err := d.TimingRunner()
	if err != nil {
		return nil, err
	}
	return r.Plan()
}

// SweepDataset names one shared dataset a sweep replays: a serializable
// workload at one seed and resolved scale. The coordinator pre-announces
// a sweep's datasets so workers pointed at a shared dataset directory
// can resolve them all — warm-dir loads, not regenerations — before
// leasing any cells.
type SweepDataset struct {
	Workload WorkloadSpec `json:"workload"`
	Seed     uint64       `json:"seed"`
	// Warm and Measure are the resolved generation scale in misses (the
	// def's defaults already applied).
	Warm    int `json:"warm"`
	Measure int `json:"measure"`
}

// params resolves the dataset's fully-specified workload parameters
// (seed already applied) — the identity its content address hashes.
func (sd SweepDataset) params() (workload.Params, error) {
	w := sd.Workload
	switch {
	case w.Open != nil:
		return workload.Params{}, fmt.Errorf("destset: workload %q uses a custom Open stream source and has no shared dataset", w.label())
	case w.Params != nil:
		p := *w.Params
		// An imported trace is seed-invariant: its identity is the input
		// content hash and every seed replays the same records.
		if !p.Import.Enabled() {
			p.Seed = sd.Seed
		}
		return p, nil
	case w.Name != "":
		return workload.Preset(w.Name, sd.Seed)
	default:
		return workload.Params{}, fmt.Errorf("destset: workload spec needs a Name, Params or Open source")
	}
}

// key resolves the dataset's tiered-store key.
func (sd SweepDataset) key() (dataset.Key, error) {
	p, err := sd.params()
	if err != nil {
		return dataset.Key{}, err
	}
	return dataset.KeyOf(p, sd.Warm, sd.Measure), nil
}

// Prewarm materializes the dataset through the process-wide tiered
// store: a memory hit, else a dataset-dir load, else a generation (which
// spills to the dir for the rest of the fleet).
func (sd SweepDataset) Prewarm() error {
	p, err := sd.params()
	if err != nil {
		return err
	}
	_, err = dataset.GetShared(p, sd.Warm, sd.Measure)
	return err
}

// ContentKey returns the dataset's content address — the fixed-width
// hex name its file lives under in any dataset directory, and the key
// workers use to fetch it over the wire (GET /v1/dataset/{key}). Both
// sides derive the address independently from the announced
// SweepDataset, so a coordinator and worker that disagree about a
// workload's identity can never exchange bytes for it.
func (sd SweepDataset) ContentKey() (string, error) {
	key, err := sd.key()
	if err != nil {
		return "", err
	}
	return key.Addr(), nil
}

// Cached reports whether the dataset is resident in the process-wide
// store's memory tier right now.
func (sd SweepDataset) Cached() bool {
	key, err := sd.key()
	if err != nil {
		return false
	}
	return dataset.Shared.Contains(key)
}

// Stored reports whether the dataset's content-addressed file exists
// under dir. It checks existence only — a corrupt file is caught by the
// CRC validation on load and heals through regeneration or refetch.
func (sd SweepDataset) Stored(dir string) bool {
	key, err := sd.key()
	if err != nil || dir == "" {
		return false
	}
	_, statErr := os.Stat(key.Path(dir))
	return statErr == nil
}

// PathIn returns the dataset's content-addressed file path under dir
// without materializing anything — the read-only lookup peer serving
// uses: a worker streams the file when it exists and never generates
// on another worker's behalf.
func (sd SweepDataset) PathIn(dir string) (string, error) {
	key, err := sd.key()
	if err != nil {
		return "", err
	}
	if dir == "" {
		return "", fmt.Errorf("destset: no dataset directory")
	}
	return key.Path(dir), nil
}

// InstallTo streams r into the dataset's content-addressed file under
// dir with the fetch-receipt discipline: the bytes land in a temporary
// file, are fully validated (header, layout, payload CRC, and decoded
// identity against this dataset's key), and only then renamed into
// place — a truncated, corrupted or mislabeled transfer never becomes
// visible to the store. Returns the installed byte count.
func (sd SweepDataset) InstallTo(dir string, r io.Reader) (int64, error) {
	key, err := sd.key()
	if err != nil {
		return 0, err
	}
	if dir == "" {
		return 0, fmt.Errorf("destset: no dataset directory to install into")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	f, err := os.CreateTemp(dir, ".dset-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	n, err := io.Copy(f, r)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	ds, err := dataset.ReadFile(tmp)
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if dataset.KeyOf(ds.Params(), ds.Warm(), ds.Measure()) != key {
		os.Remove(tmp)
		return 0, fmt.Errorf("destset: fetched dataset %s does not match its key", key.Addr())
	}
	if err := os.Rename(tmp, key.Path(dir)); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, nil
}

// SpillTo materializes the dataset's content-addressed file under dir
// and returns its path — the coordinator's serving primitive. An
// existing valid file is reused as-is; otherwise the dataset is
// generated (without touching the process-wide store) and written
// atomically. Generation is deterministic, so every process spilling
// the same key writes byte-identical files.
func (sd SweepDataset) SpillTo(dir string) (string, error) {
	p, err := sd.params()
	if err != nil {
		return "", err
	}
	key := dataset.KeyOf(p, sd.Warm, sd.Measure)
	if dir == "" {
		return "", fmt.Errorf("destset: no dataset directory to spill into")
	}
	path := key.Path(dir)
	if ds, err := dataset.ReadFile(path); err == nil &&
		dataset.KeyOf(ds.Params(), ds.Warm(), ds.Measure()) == key {
		return path, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	ds, err := dataset.Generate(p, sd.Warm, sd.Measure)
	if err != nil {
		return "", err
	}
	if err := dataset.WriteFile(path, ds); err != nil {
		return "", err
	}
	return path, nil
}

// Datasets enumerates the shared datasets the sweep's cells replay, one
// per (workload, seed) at the resolved scale, in plan order of first
// use.
func (d SweepDef) Datasets() ([]SweepDataset, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	seeds := d.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	defWarm, defMeasure := d.Warm, d.Measure
	if defWarm == 0 {
		defWarm = DefaultWarmMisses
	}
	if defMeasure == 0 {
		defMeasure = DefaultMeasureMisses
	}
	out := make([]SweepDataset, 0, len(d.Workloads)*len(seeds))
	for _, w := range d.Workloads {
		warm, measure := scaleOf(w.Warm, w.Measure, defWarm, defMeasure)
		for _, seed := range seeds {
			out = append(out, SweepDataset{Workload: w, Seed: seed, Warm: warm, Measure: measure})
		}
	}
	return out, nil
}

// wireWorkloadSpec is WorkloadSpec's serializable field set.
type wireWorkloadSpec struct {
	Name    string          `json:"Name,omitempty"`
	Params  *WorkloadParams `json:"Params,omitempty"`
	Nodes   int             `json:"Nodes,omitempty"`
	Warm    int             `json:"Warm,omitempty"`
	Measure int             `json:"Measure,omitempty"`
}

// MarshalJSON serializes a Name- or Params-based spec. Specs with a
// custom Open stream source refuse to marshal: a function cannot cross a
// process boundary, and silently dropping it would ship a spec that
// generates a different stream than the original.
func (w WorkloadSpec) MarshalJSON() ([]byte, error) {
	if w.Open != nil {
		return nil, fmt.Errorf("destset: workload %q uses a custom Open stream source and cannot be serialized", w.label())
	}
	return json.Marshal(wireWorkloadSpec{
		Name: w.Name, Params: w.Params, Nodes: w.Nodes, Warm: w.Warm, Measure: w.Measure,
	})
}

// UnmarshalJSON is MarshalJSON's inverse. A document that carries an
// Open field is refused by name: a custom stream source cannot cross a
// process boundary, and decoding the rest would silently rebuild a
// different workload than the sender ran.
func (w *WorkloadSpec) UnmarshalJSON(raw []byte) error {
	var probe struct {
		Name string          `json:"Name"`
		Open json.RawMessage `json:"Open"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return err
	}
	if len(probe.Open) > 0 && string(probe.Open) != "null" {
		name := probe.Name
		if name == "" {
			name = "workload"
		}
		return fmt.Errorf("destset: workload %q carries a custom Open stream source, which is not serializable", name)
	}
	var ws wireWorkloadSpec
	if err := json.Unmarshal(raw, &ws); err != nil {
		return err
	}
	*w = WorkloadSpec{Name: ws.Name, Params: ws.Params, Nodes: ws.Nodes, Warm: ws.Warm, Measure: ws.Measure}
	return nil
}

// sweepPlanJSON is SweepPlan's wire form: kind, fingerprint and the full
// cell list.
type sweepPlanJSON struct {
	Kind  string     `json:"kind"`
	Plan  string     `json:"plan"`
	Cells []PlanCell `json:"cells"`
}

// MarshalJSON serializes the plan: its kind, fingerprint and cells — the
// same fields a ShardManifest carries.
func (p *SweepPlan) MarshalJSON() ([]byte, error) {
	return json.Marshal(sweepPlanJSON{Kind: p.kind, Plan: p.Fingerprint(), Cells: p.Cells()})
}

// UnmarshalJSON rebuilds a plan from its wire form and verifies the
// recorded fingerprint against the one recomputed from the cells, so a
// corrupted or hand-edited plan is rejected instead of silently renaming
// an experiment.
func (p *SweepPlan) UnmarshalJSON(raw []byte) error {
	var pj sweepPlanJSON
	if err := json.Unmarshal(raw, &pj); err != nil {
		return err
	}
	if pj.Kind != PlanKindTrace && pj.Kind != PlanKindTiming {
		return fmt.Errorf("destset: sweep plan kind %q (want %q or %q)", pj.Kind, PlanKindTrace, PlanKindTiming)
	}
	rebuilt := sweep.NewPlan(pj.Cells)
	if rebuilt.Fingerprint() != pj.Plan {
		return fmt.Errorf("destset: sweep plan fingerprint %s does not match its cells (recomputed %s)",
			pj.Plan, rebuilt.Fingerprint())
	}
	*p = SweepPlan{kind: pj.Kind, plan: rebuilt}
	return nil
}
