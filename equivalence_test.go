package destset_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"destset"
)

// TestSharedDatasetSweepMatchesRegeneratingSweep is the acceptance check
// for the generate-once/replay-many path: a Runner over Name-based specs
// (which replay the shared dataset) must produce byte-identical results
// to a Runner whose cells each regenerate the miss stream from scratch —
// the pre-dataset-store behavior — at every parallelism.
func TestSharedDatasetSweepMatchesRegeneratingSweep(t *testing.T) {
	const warm, measure = 2000, 2000
	engines := []destset.EngineSpec{
		{Protocol: destset.ProtocolSnooping},
		{Protocol: destset.ProtocolDirectory},
		destset.SpecForPolicy(destset.Group),
		destset.SpecForPolicy(destset.OwnerGroup),
		{Protocol: destset.ProtocolPredictiveDirectory, PolicyName: "owner"},
	}
	names := []string{"oltp", "ocean"}

	shared := make([]destset.WorkloadSpec, len(names))
	regen := make([]destset.WorkloadSpec, len(names))
	for i, name := range names {
		shared[i] = destset.WorkloadSpec{Name: name, Warm: warm, Measure: measure}
		params, err := destset.NewWorkload(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := name
		regen[i] = destset.WorkloadSpec{
			Name:  n,
			Nodes: params.Nodes,
			Warm:  warm, Measure: measure,
			// The old per-cell path: every cell opens a fresh generator
			// and pays the oracle for the whole stream again.
			Open: func(seed uint64) (destset.Stream, error) {
				return destset.NewWorkloadGenerator(destset.WorkloadSpec{Name: n}, seed)
			},
		}
	}

	run := func(workloads []destset.WorkloadSpec, parallelism int) []byte {
		t.Helper()
		res, err := destset.NewRunner(engines, workloads,
			destset.WithSeeds(3, 4),
			destset.WithParallelism(parallelism),
		).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	want := run(regen, 1)
	for _, par := range []int{1, 4} {
		if got := run(shared, par); !bytes.Equal(got, want) {
			t.Errorf("shared-dataset sweep at parallelism %d diverges from regenerating sweep:\n%s\nvs\n%s", par, got, want)
		}
		if got := run(regen, par); !bytes.Equal(got, want) {
			t.Errorf("regenerating sweep not deterministic at parallelism %d", par)
		}
	}
}
