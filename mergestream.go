package destset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// External (streaming) observation merge. MergeObservations materializes
// every shard in memory before a byte is written — fine for figure-sized
// sweeps, fatal for million-cell ones. MergeStreams is the external
// counterpart: each input is a JSONL record stream already sorted by the
// plan's cell order (the coordinator's spill files are written that way;
// round-robin shard files satisfy it too), and the merge is a k-way heap
// over the streams' current cells, so residency is O(streams), never
// O(records). The output is byte-identical to MergeObservations over the
// same records: one merged manifest followed by every record in plan
// order, records of one cell keeping their input order.

// mergeStream is one input's read cursor: the current record and the
// plan index of the cell it belongs to.
type mergeStream struct {
	idx  int // input ordinal, for error messages
	br   *bufio.Reader
	line int
	cell int    // current record's plan cell index
	raw  []byte // current record, verbatim (no trailing newline)
	done bool
}

// advance reads the stream's next observation record, skipping blank
// lines and manifest records, and attributes it to a plan cell. At end
// of stream it sets done.
func (s *mergeStream) advance(kind string, cells map[obsCellKey]int) error {
	for {
		raw, err := s.br.ReadBytes('\n')
		if len(raw) > 0 {
			s.line++
			raw = bytes.TrimSuffix(raw, []byte("\n"))
			raw = bytes.TrimSuffix(raw, []byte("\r"))
			if len(raw) > 0 && !isManifest(raw) {
				var p obsProbe
				if jerr := json.Unmarshal(raw, &p); jerr != nil {
					return fmt.Errorf("destset: merge input %d line %d: %w", s.idx, s.line, jerr)
				}
				label := p.Engine
				if kind == PlanKindTiming {
					label = p.Sim
				}
				ci, ok := cells[obsCellKey{label: label, workload: p.Workload, seed: p.Seed}]
				if !ok {
					return fmt.Errorf("destset: merge input %d line %d names cell (%s, %s, seed %d) not in the plan",
						s.idx, s.line, label, p.Workload, p.Seed)
				}
				if ci < s.cell {
					return fmt.Errorf("destset: merge input %d line %d: cell %d after cell %d — stream is not in plan order",
						s.idx, s.line, ci, s.cell)
				}
				s.cell, s.raw = ci, append(s.raw[:0], raw...)
				return nil
			}
		}
		if err == io.EOF {
			s.done = true
			return nil
		}
		if err != nil {
			return fmt.Errorf("destset: merge input %d: %w", s.idx, err)
		}
	}
}

// streamHeap is a min-heap of streams keyed by current cell index; ties
// broken by input ordinal so the pop order is deterministic.
type streamHeap []*mergeStream

func (h streamHeap) less(i, j int) bool {
	if h[i].cell != h[j].cell {
		return h[i].cell < h[j].cell
	}
	return h[i].idx < h[j].idx
}

func (h streamHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h streamHeap) down(i int) {
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < len(h) && h.less(l, min) {
			min = l
		}
		if r < len(h) && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// MergeStreams merges plan-ordered JSONL observation record streams into
// the full-run observation file on w: one merged manifest (shard 0 of 1)
// followed by every input record, verbatim, in the plan's cell order —
// byte-identical to MergeObservations over the same records, and to the
// unsharded run at parallelism 1. Unlike MergeObservations it never
// materializes the inputs: each stream is read once, front to back, and
// only one record per stream is resident, so arbitrarily large sweeps
// merge in O(streams) memory.
//
// Each input must carry records whose plan cell indices are
// non-decreasing (records of one cell stay consecutive and in their
// original order), one cell must not span two inputs, and the inputs
// together must cover every plan cell — holes, duplicates, out-of-order
// records and cells foreign to the plan are refused, exactly as
// MergeObservations refuses them. Manifest records and blank lines in
// the inputs are skipped.
func (p *SweepPlan) MergeStreams(w io.Writer, parts ...io.Reader) error {
	if len(parts) == 0 {
		return fmt.Errorf("destset: no streams to merge")
	}
	planCells := p.Cells()
	cells := make(map[obsCellKey]int, len(planCells))
	for i, c := range planCells {
		key := obsCellKey{label: c.Engine, workload: c.Workload, seed: c.Seed}
		if _, dup := cells[key]; dup {
			return fmt.Errorf("destset: plan has two cells labeled (%s, %s, seed %d); records cannot be attributed — give the specs distinct labels",
				c.Engine, c.Workload, c.Seed)
		}
		cells[key] = i
	}

	heap := make(streamHeap, 0, len(parts))
	for i, r := range parts {
		s := &mergeStream{idx: i, br: bufio.NewReaderSize(r, 64*1024)}
		if err := s.advance(p.kind, cells); err != nil {
			return err
		}
		if !s.done {
			heap = append(heap, s)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		heap.down(i)
	}

	bw := bufio.NewWriter(w)
	manifest, err := json.Marshal(p.Manifest(0, 1))
	if err != nil {
		return fmt.Errorf("destset: encoding merged manifest: %w", err)
	}
	bw.Write(manifest)
	bw.WriteByte('\n')

	// ownedBy[i] is the input that emitted cell i's records (-1: none
	// yet). A second input arriving at an already-owned cell is a
	// duplicate; a gap behind the global cursor is a hole.
	ownedBy := make([]int, len(planCells))
	for i := range ownedBy {
		ownedBy[i] = -1
	}
	next := 0 // the plan cell the merge expects next
	for len(heap) > 0 {
		s := heap[0]
		if ownedBy[s.cell] >= 0 {
			c := planCells[s.cell]
			return fmt.Errorf("destset: cell %d (%s, %s, seed %d) appears in merge inputs %d and %d — one cell must not span streams",
				s.cell, c.Engine, c.Workload, c.Seed, ownedBy[s.cell], s.idx)
		}
		if s.cell > next {
			c := planCells[next]
			return fmt.Errorf("destset: cell %d (%s, %s, seed %d) has no records — incomplete stream set (interrupted run?)",
				next, c.Engine, c.Workload, c.Seed)
		}
		// Emit every record of this cell from this stream; they are
		// consecutive by the non-decreasing invariant.
		ci := s.cell
		ownedBy[ci] = s.idx
		next = ci + 1
		for !s.done && s.cell == ci {
			bw.Write(s.raw)
			bw.WriteByte('\n')
			if err := s.advance(p.kind, cells); err != nil {
				return err
			}
		}
		if s.done {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		if len(heap) > 0 {
			heap.down(0)
		}
	}
	if next != len(planCells) {
		c := planCells[next]
		return fmt.Errorf("destset: cell %d (%s, %s, seed %d) has no records — incomplete stream set (interrupted run?)",
			next, c.Engine, c.Workload, c.Seed)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("destset: writing merged observations: %w", err)
	}
	return nil
}
