package destset_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"destset"
)

// TestJSONLObserverRoundTrip runs a real sweep through the JSONL sink
// and decodes the file back: every streamed observation must survive
// the trip, in order.
func TestJSONLObserverRoundTrip(t *testing.T) {
	var want []destset.Observation
	var buf bytes.Buffer
	sink := destset.NewJSONLObserver(&buf)
	_, err := destset.NewRunner(
		[]destset.EngineSpec{destset.SpecForPolicy(destset.Group), {Protocol: destset.ProtocolDirectory}},
		[]destset.WorkloadSpec{{Name: "ocean", Warm: 500, Measure: 3000}},
		destset.WithSeeds(1, 2),
		destset.WithInterval(1000),
		destset.WithObserver(func(o destset.Observation) {
			want = append(want, o)
			sink.Observe(o)
		}),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("sweep streamed no observations")
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(want) {
		t.Fatalf("%d lines written for %d observations", lines, len(want))
	}

	got, err := destset.ReadObservations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestReadObservationsRejectsGarbage checks malformed lines fail with
// their line number while blank lines are tolerated.
func TestReadObservationsRejectsGarbage(t *testing.T) {
	in := "{\"Engine\":\"a\"}\n\n{not json}\n"
	obs, err := destset.ReadObservations(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line-3 decode failure", err)
	}
	if len(obs) != 1 || obs[0].Engine != "a" {
		t.Errorf("prefix observations = %+v", obs)
	}
}

// failWriter fails after n bytes to exercise sticky errors.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if len(p) > f.left {
		n := f.left
		f.left = 0
		return n, fmt.Errorf("disk full")
	}
	f.left -= len(p)
	return len(p), nil
}

func TestJSONLObserverStickyError(t *testing.T) {
	sink := destset.NewJSONLObserver(&failWriter{left: 10})
	for i := 0; i < 20_000; i++ {
		sink.Observe(destset.Observation{Engine: "e", Workload: "w", Interval: i})
	}
	if err := sink.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Flush err = %v, want sticky write failure", err)
	}
	if sink.Err() == nil {
		t.Error("Err should report the sticky failure")
	}
}

// TestManifestRoundTripAndSkipping writes a manifest-headed shard file
// and checks readers skip the manifest while merge tooling decodes it.
func TestManifestRoundTripAndSkipping(t *testing.T) {
	engines := []destset.EngineSpec{{Protocol: destset.ProtocolSnooping}}
	workloads := []destset.WorkloadSpec{{Name: "oltp", Warm: 200, Measure: 200}}
	runner := destset.NewRunner(engines, workloads)
	plan, err := runner.Plan()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sink := destset.NewJSONLObserver(&buf)
	if err := sink.WriteManifest(plan.Manifest(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := destset.NewRunner(engines, workloads,
		destset.WithObserver(sink.Observe)).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	obs, err := destset.ReadObservations(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Engine != "snooping" {
		t.Fatalf("observations with manifest skipped = %+v", obs)
	}
	streamed := 0
	err = destset.EachObservation(bytes.NewReader(buf.Bytes()), func(o destset.Observation) error {
		streamed++
		return nil
	})
	if err != nil || streamed != 1 {
		t.Fatalf("EachObservation = (%d, %v)", streamed, err)
	}
}

// TestEachObservationStopsOnCallbackError pins the streaming contract:
// fn's error aborts the scan and surfaces as-is.
func TestEachObservationStopsOnCallbackError(t *testing.T) {
	in := "{\"Engine\":\"a\"}\n{\"Engine\":\"b\"}\n"
	calls := 0
	sentinel := fmt.Errorf("stop here")
	err := destset.EachObservation(strings.NewReader(in), func(destset.Observation) error {
		calls++
		return sentinel
	})
	if err != sentinel || calls != 1 {
		t.Errorf("EachObservation = (%d calls, %v), want (1, sentinel)", calls, err)
	}
}

// shardJSONL runs one shard of a sweep into a manifest-headed JSONL
// buffer, the way cmd/traceeval -json -shard does.
func shardJSONL(t *testing.T, engines []destset.EngineSpec, workloads []destset.WorkloadSpec, shard, shards int, opts ...destset.RunnerOption) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	sink := destset.NewJSONLObserver(&buf)
	all := append([]destset.RunnerOption{destset.WithObserver(sink.Observe)}, opts...)
	if shards > 1 {
		all = append(all, destset.WithShard(shard, shards))
	}
	runner := destset.NewRunner(engines, workloads, all...)
	plan, err := runner.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.WriteManifest(plan.Manifest(shard, shards)); err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestMergeObservationsReassemblesFullRun merges shard JSONL streams
// and requires byte-identity with the unsharded parallelism-1 stream.
func TestMergeObservationsReassemblesFullRun(t *testing.T) {
	engines := []destset.EngineSpec{
		{Protocol: destset.ProtocolSnooping},
		{Protocol: destset.ProtocolDirectory},
		destset.SpecForPolicy(destset.Owner),
	}
	workloads := []destset.WorkloadSpec{
		{Name: "oltp", Warm: 300, Measure: 300},
		{Name: "ocean", Warm: 300, Measure: 300},
	}
	seeds := destset.WithSeeds(3, 4)

	full := shardJSONL(t, engines, workloads, 0, 1, seeds, destset.WithParallelism(1))
	s0 := shardJSONL(t, engines, workloads, 0, 2, seeds)
	s1 := shardJSONL(t, engines, workloads, 1, 2, seeds)

	var merged bytes.Buffer
	if err := destset.MergeObservations(&merged, bytes.NewReader(s0.Bytes()), bytes.NewReader(s1.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), full.Bytes()) {
		t.Errorf("merged stream differs from unsharded stream:\n%s\nvs\n%s", merged.Bytes(), full.Bytes())
	}
}

// TestMergeObservationsEmptyManifestedShard pins the degenerate split:
// with more shards than plan cells, the surplus shards' files hold a
// manifest and no records — and the merge must accept them, since every
// cell is still covered. The merged stream stays byte-identical to the
// unsharded run.
func TestMergeObservationsEmptyManifestedShard(t *testing.T) {
	engines := []destset.EngineSpec{{Protocol: destset.ProtocolSnooping}, {Protocol: destset.ProtocolDirectory}}
	workloads := []destset.WorkloadSpec{{Name: "oltp", Warm: 200, Measure: 200}}

	// 2 cells split 3 ways: shard 2 owns nothing.
	full := shardJSONL(t, engines, workloads, 0, 1, destset.WithParallelism(1))
	s0 := shardJSONL(t, engines, workloads, 0, 3)
	s1 := shardJSONL(t, engines, workloads, 1, 3)
	s2 := shardJSONL(t, engines, workloads, 2, 3)
	if lines := bytes.Count(s2.Bytes(), []byte("\n")); lines != 1 {
		t.Fatalf("empty shard file has %d lines, want just the manifest", lines)
	}

	var merged bytes.Buffer
	if err := destset.MergeObservations(&merged, bytes.NewReader(s0.Bytes()), bytes.NewReader(s1.Bytes()), bytes.NewReader(s2.Bytes())); err != nil {
		t.Fatalf("merge with an empty-but-manifested shard: %v", err)
	}
	if !bytes.Equal(merged.Bytes(), full.Bytes()) {
		t.Error("merged stream with empty shard differs from the unsharded stream")
	}

	// The empty shard still counts toward coverage: dropping it is a
	// missing-shard error, not a quiet success.
	if err := destset.MergeObservations(&merged, bytes.NewReader(s0.Bytes()), bytes.NewReader(s1.Bytes())); err == nil {
		t.Error("merge without the empty shard should report it missing")
	}
}

// TestMergeObservationsRefusals pins the refusal matrix: mismatched
// plan fingerprints, missing and duplicate shards, manifest-less files
// and foreign records are all errors.
func TestMergeObservationsRefusals(t *testing.T) {
	engines := []destset.EngineSpec{{Protocol: destset.ProtocolSnooping}, {Protocol: destset.ProtocolDirectory}}
	workloads := []destset.WorkloadSpec{{Name: "oltp", Warm: 200, Measure: 200}}
	s0 := shardJSONL(t, engines, workloads, 0, 2)
	s1 := shardJSONL(t, engines, workloads, 1, 2)

	// A different sweep (different scale -> different fingerprint).
	other := shardJSONL(t, engines, []destset.WorkloadSpec{{Name: "oltp", Warm: 100, Measure: 100}}, 1, 2)

	var out bytes.Buffer
	check := func(name, wantSub string, ins ...*bytes.Buffer) {
		t.Helper()
		readers := make([]io.Reader, len(ins))
		for i, b := range ins {
			readers[i] = bytes.NewReader(b.Bytes())
		}
		out.Reset()
		err := destset.MergeObservations(&out, readers...)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: err = %v, want %q", name, err, wantSub)
		}
	}
	check("mismatched fingerprints", "refusing to merge", s0, other)
	check("missing shard", "missing", s0)
	check("duplicate shard", "twice", s0, s0)

	var noManifest bytes.Buffer
	noManifest.WriteString("{\"Engine\":\"snooping\",\"Workload\":\"oltp\",\"Seed\":1}\n")
	check("manifest-less file", "not a shard manifest", &noManifest)

	// A record naming a cell outside the plan.
	lines := bytes.SplitN(s0.Bytes(), []byte("\n"), 2)
	foreign := bytes.NewBuffer(append(append([]byte(nil), lines[0]...), '\n'))
	foreign.WriteString("{\"Engine\":\"snooping\",\"Workload\":\"zzz\",\"Seed\":1}\n")
	check("foreign record", "not in the plan", foreign, s1)

	// An interrupted shard: manifest-valid but a cell never streamed.
	truncated := bytes.NewBuffer(append(append([]byte(nil), lines[0]...), '\n'))
	check("incomplete shard", "no records", truncated, s1)

	// Same specs, different observation granularity: different streams,
	// so the fingerprints must refuse the merge.
	finer := shardJSONL(t, engines, workloads, 1, 2, destset.WithInterval(50))
	check("mismatched interval", "refusing to merge", s0, finer)
}
