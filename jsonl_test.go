package destset_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"destset"
)

// TestJSONLObserverRoundTrip runs a real sweep through the JSONL sink
// and decodes the file back: every streamed observation must survive
// the trip, in order.
func TestJSONLObserverRoundTrip(t *testing.T) {
	var want []destset.Observation
	var buf bytes.Buffer
	sink := destset.NewJSONLObserver(&buf)
	_, err := destset.NewRunner(
		[]destset.EngineSpec{destset.SpecForPolicy(destset.Group), {Protocol: destset.ProtocolDirectory}},
		[]destset.WorkloadSpec{{Name: "ocean", Warm: 500, Measure: 3000}},
		destset.WithSeeds(1, 2),
		destset.WithInterval(1000),
		destset.WithObserver(func(o destset.Observation) {
			want = append(want, o)
			sink.Observe(o)
		}),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("sweep streamed no observations")
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(want) {
		t.Fatalf("%d lines written for %d observations", lines, len(want))
	}

	got, err := destset.ReadObservations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestReadObservationsRejectsGarbage checks malformed lines fail with
// their line number while blank lines are tolerated.
func TestReadObservationsRejectsGarbage(t *testing.T) {
	in := "{\"Engine\":\"a\"}\n\n{not json}\n"
	obs, err := destset.ReadObservations(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line-3 decode failure", err)
	}
	if len(obs) != 1 || obs[0].Engine != "a" {
		t.Errorf("prefix observations = %+v", obs)
	}
}

// failWriter fails after n bytes to exercise sticky errors.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if len(p) > f.left {
		n := f.left
		f.left = 0
		return n, fmt.Errorf("disk full")
	}
	f.left -= len(p)
	return len(p), nil
}

func TestJSONLObserverStickyError(t *testing.T) {
	sink := destset.NewJSONLObserver(&failWriter{left: 10})
	for i := 0; i < 20_000; i++ {
		sink.Observe(destset.Observation{Engine: "e", Workload: "w", Interval: i})
	}
	if err := sink.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Flush err = %v, want sticky write failure", err)
	}
	if sink.Err() == nil {
		t.Error("Err should report the sticky failure")
	}
}
