package destset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLObserver spills sweep observations to a writer as JSON Lines, one
// observation per line — the checkpoint format for long sweeps: a
// partially-written file is still a valid prefix, and live dashboards
// can tail it.
//
// Wire it to a Runner with WithObserver(o.Observe). The Runner
// serializes observer calls, so the observer needs no locking of its
// own; writes are buffered and must be Flush'd (or Close'd) when the
// sweep ends. Encoding or write errors are sticky: the first one stops
// further output and is reported by Err, Flush and Close.
type JSONLObserver struct {
	w   io.Writer
	bw  *bufio.Writer
	err error
}

// NewJSONLObserver returns an observer writing to w.
func NewJSONLObserver(w io.Writer) *JSONLObserver {
	return &JSONLObserver{w: w, bw: bufio.NewWriter(w)}
}

// Observe writes one observation line. It is an Observer.
func (o *JSONLObserver) Observe(obs Observation) { o.write(obs) }

// ObserveTiming writes one timing observation line. It is a
// TimingObserver, so the same sink serves trace-driven Runner sweeps and
// TimingRunner sweeps alike (one file should hold one kind of
// observation; mixing them is possible but the readers below decode a
// homogeneous stream).
func (o *JSONLObserver) ObserveTiming(obs TimingObservation) { o.write(obs) }

// write marshals any observation value as one JSON line.
func (o *JSONLObserver) write(v any) {
	if o.err != nil {
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		o.err = fmt.Errorf("destset: encoding observation: %w", err)
		return
	}
	raw = append(raw, '\n')
	if _, err := o.bw.Write(raw); err != nil {
		o.err = fmt.Errorf("destset: writing observation: %w", err)
	}
}

// Err returns the first error encountered, if any.
func (o *JSONLObserver) Err() error { return o.err }

// Flush writes any buffered observations through to the underlying
// writer and returns the observer's first error.
func (o *JSONLObserver) Flush() error {
	if o.err == nil {
		if err := o.bw.Flush(); err != nil {
			o.err = fmt.Errorf("destset: flushing observations: %w", err)
		}
	}
	return o.err
}

// Close flushes and, when the underlying writer is an io.Closer, closes
// it. The first error wins.
func (o *JSONLObserver) Close() error {
	ferr := o.Flush()
	if c, ok := o.w.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && o.err == nil {
			o.err = fmt.Errorf("destset: closing observation sink: %w", cerr)
		}
	}
	if ferr != nil {
		return ferr
	}
	return o.err
}

// ReadObservations decodes a JSON Lines observation stream, as written
// by JSONLObserver, back into observations. Blank lines are skipped; a
// malformed line fails with its 1-based line number.
func ReadObservations(r io.Reader) ([]Observation, error) {
	return readJSONL[Observation](r)
}

// ReadTimingObservations decodes a JSON Lines timing-observation stream,
// as written by JSONLObserver.ObserveTiming, back into observations.
func ReadTimingObservations(r io.Reader) ([]TimingObservation, error) {
	return readJSONL[TimingObservation](r)
}

// readJSONL decodes one homogeneous JSON Lines stream. Blank lines are
// skipped; a malformed line fails with its 1-based line number.
func readJSONL[T any](r io.Reader) ([]T, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []T
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var obs T
		if err := json.Unmarshal(raw, &obs); err != nil {
			return out, fmt.Errorf("destset: observation line %d: %w", line, err)
		}
		out = append(out, obs)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("destset: reading observations: %w", err)
	}
	return out, nil
}
