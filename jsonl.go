package destset

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLObserver spills sweep observations to a writer as JSON Lines, one
// observation per line — the checkpoint format for long sweeps: a
// partially-written file is still a valid prefix, and live dashboards
// can tail it.
//
// Wire it to a Runner with WithObserver(o.Observe). The Runner
// serializes observer calls, so the observer needs no locking of its
// own; writes are buffered and must be Flush'd (or Close'd) when the
// sweep ends. Encoding or write errors are sticky: the first one stops
// further output and is reported by Err, Flush and Close.
type JSONLObserver struct {
	w   io.Writer
	bw  *bufio.Writer
	err error
}

// NewJSONLObserver returns an observer writing to w.
func NewJSONLObserver(w io.Writer) *JSONLObserver {
	return &JSONLObserver{w: w, bw: bufio.NewWriter(w)}
}

// Observe writes one observation line. It is an Observer.
func (o *JSONLObserver) Observe(obs Observation) { o.write(obs) }

// ObserveTiming writes one timing observation line. It is a
// TimingObserver, so the same sink serves trace-driven Runner sweeps and
// TimingRunner sweeps alike (one file should hold one kind of
// observation; mixing them is possible but the readers below decode a
// homogeneous stream).
func (o *JSONLObserver) ObserveTiming(obs TimingObservation) { o.write(obs) }

// write marshals any observation value as one JSON line.
func (o *JSONLObserver) write(v any) {
	if o.err != nil {
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		o.err = fmt.Errorf("destset: encoding observation: %w", err)
		return
	}
	raw = append(raw, '\n')
	if _, err := o.bw.Write(raw); err != nil {
		o.err = fmt.Errorf("destset: writing observation: %w", err)
	}
}

// Err returns the first error encountered, if any.
func (o *JSONLObserver) Err() error { return o.err }

// Flush writes any buffered observations through to the underlying
// writer and returns the observer's first error.
func (o *JSONLObserver) Flush() error {
	if o.err == nil {
		if err := o.bw.Flush(); err != nil {
			o.err = fmt.Errorf("destset: flushing observations: %w", err)
		}
	}
	return o.err
}

// Close flushes and, when the underlying writer is an io.Closer, closes
// it. The first error wins.
func (o *JSONLObserver) Close() error {
	ferr := o.Flush()
	if c, ok := o.w.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && o.err == nil {
			o.err = fmt.Errorf("destset: closing observation sink: %w", cerr)
		}
	}
	if ferr != nil {
		return ferr
	}
	return o.err
}

// ManifestFormat identifies a shard-manifest record; it is the value of
// the record's "format" field, which no observation record carries.
const ManifestFormat = "destset/shard-manifest"

// ManifestVersion is the current shard-manifest record version.
const ManifestVersion = 1

// ShardManifest is the first record of a shard's JSONL observation
// file: which plan the shard belongs to (by fingerprint and full cell
// list), which shard of how many it is, and which kind of observations
// follow. MergeObservations uses it to reassemble shard files into the
// full-run stream — and to refuse files from different plans.
type ShardManifest struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Kind is PlanKindTrace or PlanKindTiming.
	Kind string `json:"kind"`
	// Plan is the sweep plan's fingerprint (SweepPlan.Fingerprint).
	Plan string `json:"plan"`
	// Shard and Shards name the subset this file holds (see WithShard).
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Cells is the full plan's cell list in execution order — identical
	// across every shard of one sweep.
	Cells []PlanCell `json:"cells"`
}

// WriteManifest writes a shard-manifest record. Call it once, before
// the sweep runs, so the manifest is the file's first record; readers
// (EachObservation and friends) skip it transparently.
func (o *JSONLObserver) WriteManifest(m ShardManifest) error {
	o.write(m)
	return o.err
}

// manifestToken is the byte sequence every manifest record contains, as
// json.Marshal renders ShardManifest.Format. Scanning for it first
// keeps the per-record manifest check O(n) byte search instead of a
// second JSON parse of every observation line.
var manifestToken = []byte(`"format":"` + ManifestFormat + `"`)

// isManifest reports whether a raw JSON line is a shard-manifest record.
func isManifest(raw []byte) bool {
	if !bytes.Contains(raw, manifestToken) {
		return false
	}
	var probe struct {
		Format string `json:"format"`
	}
	return json.Unmarshal(raw, &probe) == nil && probe.Format == ManifestFormat
}

// eachLine reads r line by line with no line-length cap — a shard
// manifest embeds the plan's full cell list and can outgrow any fixed
// scanner buffer — calling fn with each non-empty line's 1-based number
// and content (line terminator stripped). fn's error stops the scan.
func eachLine(r io.Reader, fn func(line int, raw []byte) error) error {
	br := bufio.NewReaderSize(r, 64*1024)
	line := 0
	for {
		raw, err := br.ReadBytes('\n')
		if len(raw) > 0 {
			line++
			raw = bytes.TrimSuffix(raw, []byte("\n"))
			raw = bytes.TrimSuffix(raw, []byte("\r"))
			if len(raw) > 0 {
				if ferr := fn(line, raw); ferr != nil {
					return ferr
				}
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// ReadObservations decodes a JSON Lines observation stream, as written
// by JSONLObserver, back into observations. Shard-manifest records and
// blank lines are skipped; a malformed line fails with its 1-based line
// number.
func ReadObservations(r io.Reader) ([]Observation, error) {
	var out []Observation
	err := EachObservation(r, func(o Observation) error {
		out = append(out, o)
		return nil
	})
	return out, err
}

// ReadTimingObservations decodes a JSON Lines timing-observation stream,
// as written by JSONLObserver.ObserveTiming, back into observations.
func ReadTimingObservations(r io.Reader) ([]TimingObservation, error) {
	var out []TimingObservation
	err := EachTimingObservation(r, func(o TimingObservation) error {
		out = append(out, o)
		return nil
	})
	return out, err
}

// EachObservation streams a JSON Lines observation file record by
// record: fn is called once per observation, in file order, without the
// file ever being materialized — the constant-memory reader for sweeps
// whose observation logs outgrow RAM. Shard-manifest records and blank
// lines are skipped. A malformed line fails with its 1-based line
// number; an error from fn stops the scan and is returned as-is.
func EachObservation(r io.Reader, fn func(Observation) error) error {
	return eachJSONL(r, fn)
}

// EachTimingObservation streams a JSON Lines timing-observation file
// record by record, in file order; see EachObservation.
func EachTimingObservation(r io.Reader, fn func(TimingObservation) error) error {
	return eachJSONL(r, fn)
}

// eachJSONL streams one homogeneous JSON Lines stream through fn,
// skipping blank lines and shard-manifest records.
func eachJSONL[T any](r io.Reader, fn func(T) error) error {
	return eachLine(r, func(line int, raw []byte) error {
		if isManifest(raw) {
			return nil
		}
		var obs T
		if err := json.Unmarshal(raw, &obs); err != nil {
			return fmt.Errorf("destset: observation line %d: %w", line, err)
		}
		return fn(obs)
	})
}

// shardFile is one parsed shard input: its manifest and its raw
// observation lines (verbatim, without trailing newlines).
type shardFile struct {
	manifest ShardManifest
	records  [][]byte
}

// readShardFile parses one shard JSONL file: the first record must be a
// shard manifest; the rest are kept as raw lines so merging re-emits
// them byte-for-byte.
func readShardFile(r io.Reader) (shardFile, error) {
	var f shardFile
	sawManifest := false
	err := eachLine(r, func(line int, raw []byte) error {
		if !sawManifest {
			if !isManifest(raw) {
				return fmt.Errorf("line %d: first record is not a shard manifest (was this file written with a sharded -json run?)", line)
			}
			if err := json.Unmarshal(raw, &f.manifest); err != nil {
				return fmt.Errorf("line %d: decoding shard manifest: %w", line, err)
			}
			if f.manifest.Version != ManifestVersion {
				return fmt.Errorf("line %d: shard manifest version %d, want %d", line, f.manifest.Version, ManifestVersion)
			}
			sawManifest = true
			return nil
		}
		if isManifest(raw) {
			return fmt.Errorf("line %d: second shard manifest in one file", line)
		}
		f.records = append(f.records, append([]byte(nil), raw...))
		return nil
	})
	if err != nil {
		return f, err
	}
	if !sawManifest {
		return f, fmt.Errorf("no shard manifest found")
	}
	return f, nil
}

// obsProbe decodes the cell-identifying fields common to both
// observation kinds: trace observations carry Engine, timing
// observations carry Sim.
type obsProbe struct {
	Engine   string `json:"Engine"`
	Sim      string `json:"Sim"`
	Workload string `json:"Workload"`
	Seed     uint64 `json:"Seed"`
}

// obsCellKey is a cell's identity as observation records name it.
type obsCellKey struct {
	label    string
	workload string
	seed     uint64
}

// MergeObservations merges per-shard JSONL observation files — each
// beginning with a ShardManifest, as cmd/timing and cmd/traceeval write
// under -json -shard — into the full-run observation stream on w: one
// merged manifest (shard 0 of 1) followed by every input record,
// verbatim, reordered into the plan's deterministic cell order (records
// of one cell keep their relative order). It refuses inputs whose plan
// fingerprints differ, whose shard set does not cover the plan exactly,
// or whose records name cells outside the plan — merging files from
// different sweeps is an error, not a silent mix. The merged output is
// byte-identical to what the unsharded run writes at parallelism 1.
func MergeObservations(w io.Writer, shards ...io.Reader) error {
	if len(shards) == 0 {
		return fmt.Errorf("destset: no shard files to merge")
	}
	files := make([]shardFile, len(shards))
	for i, r := range shards {
		f, err := readShardFile(r)
		if err != nil {
			return fmt.Errorf("destset: shard input %d: %w", i, err)
		}
		files[i] = f
	}
	head := files[0].manifest
	seen := make(map[int]bool, len(files))
	for i, f := range files {
		m := f.manifest
		if m.Plan != head.Plan {
			return fmt.Errorf("destset: shard input %d has plan fingerprint %s, input 0 has %s — refusing to merge different sweeps",
				i, m.Plan, head.Plan)
		}
		if m.Kind != head.Kind || m.Shards != head.Shards || len(m.Cells) != len(head.Cells) {
			return fmt.Errorf("destset: shard input %d manifest (kind %s, %d shards, %d cells) does not match input 0 (kind %s, %d shards, %d cells)",
				i, m.Kind, m.Shards, len(m.Cells), head.Kind, head.Shards, len(head.Cells))
		}
		if m.Shard < 0 || m.Shard >= m.Shards {
			return fmt.Errorf("destset: shard input %d claims shard %d of %d", i, m.Shard, m.Shards)
		}
		if seen[m.Shard] {
			return fmt.Errorf("destset: shard %d/%d supplied twice", m.Shard, m.Shards)
		}
		seen[m.Shard] = true
	}
	if len(seen) != head.Shards {
		missing := make([]int, 0, head.Shards-len(seen))
		for s := 0; s < head.Shards; s++ {
			if !seen[s] {
				missing = append(missing, s)
			}
		}
		return fmt.Errorf("destset: merge needs all %d shards of the plan; missing %v", head.Shards, missing)
	}

	// Bucket every record by its cell, preserving per-cell file order
	// (one cell's records never span shards, and within its shard they
	// are already chronological).
	cellIndex := make(map[obsCellKey]int, len(head.Cells))
	for i, c := range head.Cells {
		key := obsCellKey{label: c.Engine, workload: c.Workload, seed: c.Seed}
		if _, dup := cellIndex[key]; dup {
			return fmt.Errorf("destset: plan has two cells labeled (%s, %s, seed %d); records cannot be attributed — give the specs distinct labels",
				c.Engine, c.Workload, c.Seed)
		}
		cellIndex[key] = i
	}
	buckets := make([][][]byte, len(head.Cells))
	for i, f := range files {
		for _, raw := range f.records {
			var p obsProbe
			if err := json.Unmarshal(raw, &p); err != nil {
				return fmt.Errorf("destset: shard input %d: undecodable record: %w", i, err)
			}
			label := p.Engine
			if head.Kind == PlanKindTiming {
				label = p.Sim
			}
			ci, ok := cellIndex[obsCellKey{label: label, workload: p.Workload, seed: p.Seed}]
			if !ok {
				return fmt.Errorf("destset: shard input %d has a record for cell (%s, %s, seed %d) that is not in the plan",
					i, label, p.Workload, p.Seed)
			}
			buckets[ci] = append(buckets[ci], raw)
		}
	}

	// Every plan cell must have produced at least one record; a cell
	// with none means a shard was interrupted mid-sweep and its file,
	// though manifest-valid, is incomplete — merging it would fabricate
	// a "full run" with holes (the in-process Merge rejects the same
	// situation by per-shard result counts).
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			c := head.Cells[i]
			return fmt.Errorf("destset: cell %d (%s, %s, seed %d) has no records — incomplete shard file (interrupted run?)",
				i, c.Engine, c.Workload, c.Seed)
		}
	}

	bw := bufio.NewWriter(w)
	merged := head
	merged.Shard, merged.Shards = 0, 1
	raw, err := json.Marshal(merged)
	if err != nil {
		return fmt.Errorf("destset: encoding merged manifest: %w", err)
	}
	bw.Write(raw)
	bw.WriteByte('\n')
	for _, bucket := range buckets {
		for _, rec := range bucket {
			bw.Write(rec)
			bw.WriteByte('\n')
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("destset: writing merged observations: %w", err)
	}
	return nil
}
