package destset

import (
	"fmt"
	"strconv"
	"strings"

	"destset/internal/sweep"
)

// Sweep plans. A Runner's or TimingRunner's cells have always run in one
// deterministic order; SweepPlan names that order: every cell gets a
// stable CellID (a fingerprint of spec × workload × seed plus the
// measurement scale) and the plan is fingerprinted over its cells. Two
// processes that build the same runner — same specs, seeds, scale — in
// any order of events compute byte-identical plans, which is what makes
// sharded execution safe: shard processes agree on the cell index space
// up front, and merge tools reject outputs whose plan fingerprints
// differ instead of silently combining different experiments.

// PlanCell is the stable identity of one sweep cell.
type PlanCell = sweep.CellID

// Plan kinds, naming which runner a plan (and a shard manifest) belongs
// to.
const (
	PlanKindTrace  = "trace"  // trace-driven Runner cells
	PlanKindTiming = "timing" // execution-driven TimingRunner cells
)

// SweepPlan is a runner's full cell list in execution order
// (workload-major: for each workload, for each engine/sim spec, for each
// seed), with a stable fingerprint over the whole.
type SweepPlan struct {
	kind string
	plan *sweep.Plan
}

// Kind returns PlanKindTrace or PlanKindTiming.
func (p *SweepPlan) Kind() string { return p.kind }

// Len returns the number of cells.
func (p *SweepPlan) Len() int { return p.plan.Len() }

// Cell returns cell i in execution order.
func (p *SweepPlan) Cell(i int) PlanCell { return p.plan.Cell(i) }

// Cells returns every cell in execution order. The returned slice is
// shared; do not mutate.
func (p *SweepPlan) Cells() []PlanCell { return p.plan.Cells() }

// Fingerprint returns the plan's stable fingerprint: a pure function of
// the runner's kind, specs, workloads, scale and seeds, identical across
// processes.
func (p *SweepPlan) Fingerprint() string { return p.plan.Fingerprint() }

// ShardIndices returns the global cell indices shard shard of shards
// executes (see WithShard).
func (p *SweepPlan) ShardIndices(shard, shards int) ([]int, error) {
	return p.plan.Shard(shard, shards)
}

// Manifest returns the shard-manifest record describing shard shard of
// shards of this plan, as written at the head of a shard's JSONL
// observation file.
func (p *SweepPlan) Manifest(shard, shards int) ShardManifest {
	if shards <= 1 {
		shard, shards = 0, 1
	}
	return ShardManifest{
		Format:  ManifestFormat,
		Version: ManifestVersion,
		Kind:    p.kind,
		Plan:    p.Fingerprint(),
		Shard:   shard,
		Shards:  shards,
		Cells:   p.Cells(),
	}
}

// ParseShard parses the "i/n" shard selector the cmds accept as their
// -shard flag — the textual form of WithShard(i, n). "" means
// unsharded (0, 0); anything else must be exactly two integers with
// 0 <= i < n.
func ParseShard(s string) (shard, shards int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	left, right, ok := strings.Cut(s, "/")
	if ok {
		var errI, errN error
		shard, errI = strconv.Atoi(left)
		shards, errN = strconv.Atoi(right)
		ok = errI == nil && errN == nil && shards >= 1 && shard >= 0 && shard < shards
	}
	if !ok {
		return 0, 0, fmt.Errorf("destset: invalid shard %q (want i/n with 0 <= i < n)", s)
	}
	return shard, shards, nil
}

// scaleOf applies the runner's default measurement scale to a spec's
// own: 0 inherits the default, negative means "explicitly none".
func scaleOf(specWarm, specMeasure, defWarm, defMeasure int) (warm, measure int) {
	warm, measure = specWarm, specMeasure
	if warm == 0 {
		warm = defWarm
	}
	if measure == 0 {
		measure = defMeasure
	}
	if warm < 0 {
		warm = 0
	}
	if measure < 0 {
		measure = 0
	}
	return warm, measure
}

// fingerprintEngineSpec renders an EngineSpec canonically: every field
// that affects the built engine, with pointer fields dereferenced so the
// rendering is stable across processes.
func fingerprintEngineSpec(s EngineSpec) string {
	pred := ""
	if s.Predictor != nil {
		pred = fmt.Sprintf("%#v", *s.Predictor)
	}
	return fmt.Sprintf("engine|protocol=%s|policyName=%s|policy=%d|usePolicy=%t|predictor=%s|nodes=%d|label=%s",
		s.Protocol, s.PolicyName, int(s.Policy), s.UsePolicy, pred, s.Nodes, s.Label)
}

// fingerprintSimSpec renders a SimSpec canonically, including every
// Table-4 knob override.
func fingerprintSimSpec(s SimSpec) string {
	pred := ""
	if s.Predictor != nil {
		pred = fmt.Sprintf("%#v", *s.Predictor)
	}
	return fmt.Sprintf("sim|protocol=%s|policyName=%s|policy=%d|usePolicy=%t|predictor=%s|cpu=%d|nodes=%d|link=%g|traversal=%g|l2=%g|mem=%g|mshrs=%d|rob=%d|attempts=%d|label=%s",
		s.Protocol, s.PolicyName, int(s.Policy), s.UsePolicy, pred, int(s.CPU), s.Nodes,
		s.LinkBytesPerNs, s.TraversalNs, s.L2LatencyNs, s.MemLatencyNs, s.MSHRs, s.ROBWindow, s.MaxAttempts, s.Label)
}

// fingerprintWorkloadSpec renders a WorkloadSpec canonically at its
// resolved scale. Name- and Params-based specs fingerprint their full
// generation identity; a custom Open source contributes only its label
// and shape — processes sharding a sweep over custom sources are
// responsible for supplying the same stream on every shard.
func fingerprintWorkloadSpec(s WorkloadSpec, defWarm, defMeasure int) string {
	warm, measure := scaleOf(s.Warm, s.Measure, defWarm, defMeasure)
	src := ""
	switch {
	case s.Open != nil:
		src = "open:" + s.label()
	case s.Params != nil:
		src = "params:" + fmt.Sprintf("%#v", *s.Params)
	default:
		src = "name:" + s.Name
	}
	return fmt.Sprintf("workload|%s|nodes=%d|warm=%d|measure=%d", src, s.Nodes, warm, measure)
}

// buildPlan enumerates a runner's cells workload-major with stable
// fingerprints. Trace plans fold the observation interval in: it does
// not change cell results, but it changes the observation stream shard
// files carry, and two streams of different granularity must not merge
// as one sweep. The interval is meaningless to timing cells (one
// observation each), so timing plans ignore it.
func buildPlan(kind string, engineLabels, engineFPs []string, workloads []WorkloadSpec, cfg runnerConfig) *SweepPlan {
	kindFP := kind
	if kind == PlanKindTrace {
		kindFP += "|interval=" + strconv.Itoa(cfg.interval)
	}
	cells := make([]PlanCell, 0, len(engineLabels)*len(workloads)*len(cfg.seeds))
	for _, w := range workloads {
		wfp := fingerprintWorkloadSpec(w, cfg.warm, cfg.measure)
		for ei, efp := range engineFPs {
			for _, seed := range cfg.seeds {
				cells = append(cells, PlanCell{
					Engine:   engineLabels[ei],
					Workload: w.label(),
					Seed:     seed,
					Fingerprint: sweep.Fingerprint(
						kindFP, efp, wfp, "seed="+strconv.FormatUint(seed, 10)),
				})
			}
		}
	}
	return &SweepPlan{kind: kind, plan: sweep.NewPlan(cells)}
}

// Plan returns the runner's sweep plan: its cells in execution order
// with stable fingerprints. The plan does not depend on WithShard — all
// shards of a sweep share one plan.
func (r *Runner) Plan() (*SweepPlan, error) {
	if len(r.engines) == 0 || len(r.workloads) == 0 {
		return nil, fmt.Errorf("destset: Runner needs at least one engine spec and one workload spec")
	}
	labels := make([]string, len(r.engines))
	fps := make([]string, len(r.engines))
	for i, e := range r.engines {
		if err := e.validate(); err != nil {
			return nil, err
		}
		labels[i] = e.DisplayLabel()
		fps[i] = fingerprintEngineSpec(e)
	}
	return buildPlan(PlanKindTrace, labels, fps, r.workloads, r.cfg), nil
}

// Plan returns the timing runner's sweep plan: its cells in execution
// order with stable fingerprints. The plan does not depend on WithShard
// — all shards of a sweep share one plan.
func (r *TimingRunner) Plan() (*SweepPlan, error) {
	if len(r.sims) == 0 || len(r.workloads) == 0 {
		return nil, fmt.Errorf("destset: TimingRunner needs at least one sim spec and one workload spec")
	}
	labels := make([]string, len(r.sims))
	fps := make([]string, len(r.sims))
	for i, s := range r.sims {
		if err := s.validate(); err != nil {
			return nil, err
		}
		labels[i] = s.DisplayLabel()
		fps[i] = fingerprintSimSpec(s)
	}
	return buildPlan(PlanKindTiming, labels, fps, r.workloads, r.cfg), nil
}

// Merge reassembles per-shard Run outputs into the exact full-run result
// slice: shards[s] must be the output of an identically-configured
// Runner run with WithShard(s, len(shards)). Every merged cell is
// checked against the plan's coordinates, so mixing shards of different
// sweeps — or supplying them out of order — fails instead of silently
// mislabeling results.
func (r *Runner) Merge(shards [][]RunResult) ([]RunResult, error) {
	p, err := r.Plan()
	if err != nil {
		return nil, err
	}
	merged, err := sweep.MergeShards(p.Len(), shards)
	if err != nil {
		return nil, err
	}
	for i, res := range merged {
		if c := p.Cell(i); res.Engine != c.Engine || res.Workload != c.Workload || res.Seed != c.Seed {
			return nil, fmt.Errorf("destset: merged cell %d is (%s, %s, seed %d), plan expects (%s, %s, seed %d)",
				i, res.Engine, res.Workload, res.Seed, c.Engine, c.Workload, c.Seed)
		}
	}
	return merged, nil
}

// Merge reassembles per-shard Run outputs into the exact full-run result
// slice: shards[s] must be the output of an identically-configured
// TimingRunner run with WithShard(s, len(shards)). Every merged cell is
// checked against the plan's coordinates.
func (r *TimingRunner) Merge(shards [][]TimingResult) ([]TimingResult, error) {
	p, err := r.Plan()
	if err != nil {
		return nil, err
	}
	merged, err := sweep.MergeShards(p.Len(), shards)
	if err != nil {
		return nil, err
	}
	for i, res := range merged {
		if c := p.Cell(i); res.Sim != c.Engine || res.Workload != c.Workload || res.Seed != c.Seed {
			return nil, fmt.Errorf("destset: merged cell %d is (%s, %s, seed %d), plan expects (%s, %s, seed %d)",
				i, res.Sim, res.Workload, res.Seed, c.Engine, c.Workload, c.Seed)
		}
	}
	return merged, nil
}
