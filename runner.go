package destset

import (
	"context"
	"fmt"

	"destset/internal/sweep"
)

// Default measurement scale applied to WorkloadSpecs that do not set
// their own, matching the paper's reduced-scale methodology (§4).
const (
	DefaultWarmMisses    = 50_000
	DefaultMeasureMisses = 50_000
)

// Observation is one measurement interval of one sweep cell, streamed
// to observers while the sweep runs. Totals covers the interval alone;
// Cumulative covers the cell's measurement so far.
type Observation = sweep.Observation

// Observer receives per-interval observations. The Runner serializes
// calls, so observers need not be concurrency-safe.
type Observer func(Observation)

// RunResult is one completed sweep cell: an engine evaluated on a
// workload at one seed, aggregated into a tradeoff point.
type RunResult struct {
	// Engine is the engine spec's display label.
	Engine string
	// Workload names the workload (preset name or spec label).
	Workload string
	// Seed is the workload generation seed of this cell.
	Seed uint64
	// Totals is the raw per-miss accounting aggregate.
	Totals Totals
	// Tradeoff is the cell's point on the latency/bandwidth plane;
	// Tradeoff.Config carries the built engine's Name().
	Tradeoff TradeoffResult
}

type runnerConfig struct {
	seeds       []uint64
	warm        int
	measure     int
	interval    int
	parallelism int
	// shard/shards restrict a run to one shard of the plan's cell index
	// space; shards <= 1 runs everything.
	shard, shards int
	// cells, when non-nil, restricts the run to an explicit list of plan
	// indices instead (see WithCells).
	cells    []int
	observer Observer
	// timingObserver streams per-cell timing observations; it is only
	// consulted by the TimingRunner (see WithTimingObserver).
	timingObserver TimingObserver
	// resultStore, when non-nil, serves completed cells and absorbs
	// freshly-computed ones (see WithResultStore); nil falls back to the
	// shared store once SetResultDir has armed it.
	resultStore *ResultStore
	ctx         context.Context
}

// RunnerOption tunes a Runner.
type RunnerOption func(*runnerConfig)

// WithSeeds sets the workload seeds swept per (engine, workload) pair;
// the default is the single seed 1.
func WithSeeds(seeds ...uint64) RunnerOption {
	return func(c *runnerConfig) { c.seeds = append([]uint64(nil), seeds...) }
}

// WithWarmup sets the default warmup misses for workloads that do not
// set their own (default DefaultWarmMisses).
func WithWarmup(n int) RunnerOption {
	return func(c *runnerConfig) { c.warm = n }
}

// WithMeasure sets the default measured misses for workloads that do
// not set their own (default DefaultMeasureMisses).
func WithMeasure(n int) RunnerOption {
	return func(c *runnerConfig) { c.measure = n }
}

// WithInterval sets the observation granularity in misses. 0 (the
// default) emits a single observation per cell when an observer is set.
func WithInterval(misses int) RunnerOption {
	return func(c *runnerConfig) { c.interval = misses }
}

// WithParallelism caps how many sweep cells run concurrently; values
// below 1 restore the default (GOMAXPROCS). Results are identical at
// every parallelism.
func WithParallelism(n int) RunnerOption {
	return func(c *runnerConfig) { c.parallelism = n }
}

// WithObserver streams per-interval observations to fn while the sweep
// runs.
func WithObserver(fn Observer) RunnerOption {
	return func(c *runnerConfig) { c.observer = fn }
}

// WithShard restricts the run to shard shard of shards of the sweep's
// cell index space (round-robin over the plan's deterministic cell
// order), so independent processes can split one sweep: give each
// process the same specs and options plus its own WithShard(i, n), and
// reassemble the full-run result with Merge (in-process) or
// MergeObservations / cmd/sweepmerge (JSONL files). shards <= 1
// restores the default full run. Out-of-range shards fail at Run.
func WithShard(shard, shards int) RunnerOption {
	return func(c *runnerConfig) { c.shard, c.shards = shard, shards }
}

// WithCells restricts the run to an explicit, strictly increasing list
// of plan cell indices (see Plan for the index space) — the
// finer-grained sibling of WithShard that distributed workers use to
// execute a leased cell range: any subset of the plan, not just a
// round-robin residue class. Results keep the global plan order.
// WithCells is mutually exclusive with WithShard; out-of-range,
// duplicate or unsorted indices fail at Run. A nil indices slice
// restores the default full run.
func WithCells(indices []int) RunnerOption {
	return func(c *runnerConfig) {
		if indices == nil {
			c.cells = nil
			return
		}
		c.cells = append([]int(nil), indices...)
	}
}

// WithContext sets the context used when Run is called with a nil
// context.
func WithContext(ctx context.Context) RunnerOption {
	return func(c *runnerConfig) { c.ctx = ctx }
}

// Runner fans a []EngineSpec × []WorkloadSpec × seeds cross-product
// over a worker pool. Every cell builds a fresh engine, and Name- and
// Params-based workloads resolve through the process-wide dataset
// store: each (workload, seed, scale) trace is generated once — across
// cells, Runners and experiment harnesses alike — and every cell
// replays it through its own zero-copy cursor. Cells therefore share
// no mutable state and results are deterministic regardless of
// goroutine scheduling: Run returns the same results in the same order
// at parallelism 1 and parallelism N, byte-identical to regenerating
// the stream per cell.
type Runner struct {
	engines   []EngineSpec
	workloads []WorkloadSpec
	cfg       runnerConfig
}

// newRunnerConfig applies opts over the runners' shared defaults — the
// one place those defaults live, so a Runner, a TimingRunner and a
// SweepDef built from the same options agree on the effective seeds and
// scale (and therefore on the plan fingerprint).
func newRunnerConfig(opts []RunnerOption) runnerConfig {
	cfg := runnerConfig{
		seeds:   []uint64{1},
		warm:    DefaultWarmMisses,
		measure: DefaultMeasureMisses,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if len(cfg.seeds) == 0 {
		cfg.seeds = []uint64{1}
	}
	return cfg
}

// NewRunner builds a sweep over the cross-product of engine and
// workload specs.
func NewRunner(engines []EngineSpec, workloads []WorkloadSpec, opts ...RunnerOption) *Runner {
	return &Runner{
		engines:   append([]EngineSpec(nil), engines...),
		workloads: append([]WorkloadSpec(nil), workloads...),
		cfg:       newRunnerConfig(opts),
	}
}

// Run executes the sweep and returns one RunResult per cell, ordered
// workload-major: for each workload, for each engine, for each seed.
// Under WithShard only that shard's cells run; the results keep the
// global order, so Merge reassembles shard outputs into the exact
// full-run slice. A nil ctx falls back to WithContext, then
// context.Background(). On cancellation Run returns promptly with the
// completed cells (still in order) and the context's error.
func (r *Runner) Run(ctx context.Context) ([]RunResult, error) {
	if ctx == nil {
		ctx = r.cfg.ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(r.engines) == 0 || len(r.workloads) == 0 {
		return nil, fmt.Errorf("destset: Runner needs at least one engine spec and one workload spec")
	}
	engines := make([]sweep.Engine, len(r.engines))
	for i, e := range r.engines {
		if err := e.validate(); err != nil {
			return nil, err
		}
		engines[i] = e.sweepEngine()
	}
	workloads := make([]sweep.Workload, len(r.workloads))
	for i, w := range r.workloads {
		sw, err := w.resolve(r.cfg.warm, r.cfg.measure)
		if err != nil {
			return nil, err
		}
		workloads[i] = sw
	}
	var observe func(Observation)
	if r.cfg.observer != nil {
		observe = r.cfg.observer
	}
	// Result store: completed cells are served from the store (their
	// stored observation streams replay through the observer) and only
	// misses execute — see resultstore.go.
	var cache sweep.CellCache
	if store := r.cfg.resolveResultStore(); store != nil {
		plan, perr := r.Plan()
		if perr != nil {
			return nil, perr
		}
		cacheable := make([]bool, len(r.workloads))
		for i, w := range r.workloads {
			cacheable[i] = w.Open == nil
		}
		cache = &traceCellCache{
			store:     store,
			plan:      plan,
			cacheable: cacheable,
			stride:    len(r.engines) * len(r.cfg.seeds),
		}
	}
	results, err := sweep.Run(ctx, engines, workloads, sweep.Config{
		Seeds:       r.cfg.seeds,
		Parallelism: r.cfg.parallelism,
		Interval:    r.cfg.interval,
		Observe:     observe,
		Shard:       r.cfg.shard,
		Shards:      r.cfg.shards,
		Cells:       r.cfg.cells,
		Cache:       cache,
	})
	out := make([]RunResult, len(results))
	for i, res := range results {
		out[i] = RunResult{
			Engine:   res.Engine,
			Workload: res.Workload,
			Seed:     res.Seed,
			Totals:   res.Totals,
			Tradeoff: TradeoffResult{
				Config:             res.EngineName,
				RequestMsgsPerMiss: res.Totals.RequestMsgsPerMiss(),
				IndirectionPercent: res.Totals.IndirectionPercent(),
				BytesPerMiss:       res.Totals.BytesPerMiss(),
			},
		}
	}
	return out, err
}

// Evaluate runs a single (engine, workload) cell — the one-call version
// of the Runner for a single tradeoff point. Unlike EvaluatePolicy it
// reaches every registered protocol engine, including the Acacio-style
// predictive-directory hybrid:
//
//	Evaluate(ctx,
//	    EngineSpec{Protocol: ProtocolPredictiveDirectory, PolicyName: "owner"},
//	    WorkloadSpec{Name: "oltp"})
func Evaluate(ctx context.Context, engine EngineSpec, workload WorkloadSpec, opts ...RunnerOption) (TradeoffResult, error) {
	res, err := NewRunner([]EngineSpec{engine}, []WorkloadSpec{workload}, opts...).Run(ctx)
	if err != nil {
		return TradeoffResult{}, err
	}
	if len(res) != 1 {
		return TradeoffResult{}, fmt.Errorf("destset: expected one result, got %d", len(res))
	}
	return res[0].Tradeoff, nil
}
