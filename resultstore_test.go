package destset_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"destset"
)

// traceTestDef is a small trace sweep with interval streaming, so every
// cell carries a multi-observation stream the store must replay
// faithfully.
func traceTestDef() destset.SweepDef {
	return destset.NewTraceSweepDef(
		[]destset.EngineSpec{
			{Protocol: destset.ProtocolSnooping},
			destset.SpecForPolicy(destset.Group),
		},
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 1000, Measure: 1000}},
		destset.WithSeeds(1, 2),
		destset.WithInterval(400),
	)
}

func timingTestDef() destset.SweepDef {
	return destset.NewTimingSweepDef(
		[]destset.SimSpec{
			{Protocol: destset.ProtocolSnooping},
			{Protocol: destset.ProtocolMulticast, Policy: destset.OwnerGroup, UsePolicy: true},
		},
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 1000, Measure: 1000}},
		destset.WithSeeds(1, 2),
	)
}

// runDefJSONL runs def with an optional result store at the given
// parallelism and returns the manifest-headed JSONL stream merged into
// plan order (what sweepapi serves, and — at parallelism 1 — exactly
// the raw stream order) plus the result slice.
func runDefJSONL(t *testing.T, def destset.SweepDef, rs *destset.ResultStore, parallelism int) ([]byte, any) {
	t.Helper()
	plan, err := def.Plan()
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	sink := destset.NewJSONLObserver(&raw)
	if err := sink.WriteManifest(plan.Manifest(0, 1)); err != nil {
		t.Fatal(err)
	}
	opts := []destset.RunnerOption{destset.WithParallelism(parallelism)}
	if rs != nil {
		opts = append(opts, destset.WithResultStore(rs))
	}
	var res any
	switch def.Kind {
	case destset.PlanKindTrace:
		r, err := def.Runner(append(opts, destset.WithObserver(sink.Observe))...)
		if err != nil {
			t.Fatal(err)
		}
		if res, err = r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	case destset.PlanKindTiming:
		r, err := def.TimingRunner(append(opts, destset.WithTimingObserver(sink.ObserveTiming))...)
		if err != nil {
			t.Fatal(err)
		}
		if res, err = r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown kind %q", def.Kind)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	if err := destset.MergeObservations(&merged, bytes.NewReader(raw.Bytes())); err != nil {
		t.Fatal(err)
	}
	return merged.Bytes(), res
}

// TestResultStoreWarmRerunByteIdentical is the tentpole acceptance
// property for both sweep kinds: a rerun over a warm store computes
// zero cells, touches no dataset tier, and still produces output
// byte-identical to an uncached run — at parallelism 1 and N, in the
// same process and from a cold process sharing the directory.
func TestResultStoreWarmRerunByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		def  destset.SweepDef
	}{
		{"trace", traceTestDef()},
		{"timing", timingTestDef()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := tc.def.Plan()
			if err != nil {
				t.Fatal(err)
			}
			cells := uint64(plan.Len())
			baseline, baseRes := runDefJSONL(t, tc.def, nil, 1)

			dir := t.TempDir()
			rs := destset.NewResultStore()
			if err := rs.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			cold, _ := runDefJSONL(t, tc.def, rs, 1)
			if !bytes.Equal(cold, baseline) {
				t.Fatalf("store-attached cold run diverges from uncached run:\n%s\nvs\n%s", cold, baseline)
			}
			if st := rs.Stats(); st.Stores != cells || st.MemMisses != cells {
				t.Fatalf("cold run stats: %+v, want %d stores and misses", st, cells)
			}

			dsBefore := destset.DatasetCacheStats()
			warm, warmRes := runDefJSONL(t, tc.def, rs, 1)
			if !bytes.Equal(warm, baseline) {
				t.Fatalf("warm rerun diverges from uncached run:\n%s\nvs\n%s", warm, baseline)
			}
			if !reflect.DeepEqual(warmRes, baseRes) {
				t.Error("warm rerun result slice differs from uncached run")
			}
			st := rs.Stats()
			if st.Stores != cells {
				t.Fatalf("warm rerun computed cells: %d stores, want %d", st.Stores, cells)
			}
			if st.MemHits != cells {
				t.Fatalf("warm rerun stats: %+v, want %d memory hits", st, cells)
			}
			// A fully-warm rerun must not touch the dataset store at all:
			// no generations, no tier traffic — the cells' stream sources
			// are never even prewarmed.
			if dsAfter := destset.DatasetCacheStats(); dsAfter != dsBefore {
				t.Errorf("warm rerun touched the dataset store: %+v -> %+v", dsBefore, dsAfter)
			}

			// Parallelism N: the raw stream order varies, but the merged
			// plan-ordered stream and the result slice are pinned.
			parMerged, parRes := runDefJSONL(t, tc.def, rs, 4)
			if !bytes.Equal(parMerged, baseline) {
				t.Error("warm parallel rerun's merged stream diverges from uncached run")
			}
			if !reflect.DeepEqual(parRes, baseRes) {
				t.Error("warm parallel rerun result slice differs from uncached run")
			}

			// A cold process sharing the directory: zero computations,
			// every cell from the disk tier, identical bytes.
			coldProc := destset.NewResultStore()
			if err := coldProc.SetDir(dir); err != nil {
				t.Fatal(err)
			}
			fromDisk, _ := runDefJSONL(t, tc.def, coldProc, 1)
			if !bytes.Equal(fromDisk, baseline) {
				t.Error("cold-process warm-store run diverges from uncached run")
			}
			if st := coldProc.Stats(); st.Stores != 0 || st.DiskHits != cells {
				t.Fatalf("cold-process stats: %+v, want 0 stores and %d disk hits", st, cells)
			}
		})
	}
}

// TestResultStoreIncrementalRerun pins the incremental contract: change
// 3 of 9 cells' specs and only those 3 compute — the store serves the
// other 6 — with results identical to an uncached run of the new sweep.
func TestResultStoreIncrementalRerun(t *testing.T) {
	workloads := []destset.WorkloadSpec{{Name: "oltp", Warm: 800, Measure: 800}}
	seeds := destset.WithSeeds(1, 2, 3)
	before := destset.NewTraceSweepDef(
		[]destset.EngineSpec{
			{Protocol: destset.ProtocolSnooping},
			{Protocol: destset.ProtocolDirectory},
			destset.SpecForPolicy(destset.Group),
		},
		workloads, seeds,
	)
	// The "edited" sweep: the middle engine spec changes, the other two
	// — and every workload and seed — stay put. One workload × 3 seeds
	// per engine, so exactly 3 of the 9 cell fingerprints change.
	after := destset.NewTraceSweepDef(
		[]destset.EngineSpec{
			{Protocol: destset.ProtocolSnooping},
			destset.SpecForPolicy(destset.OwnerGroup),
			destset.SpecForPolicy(destset.Group),
		},
		workloads, seeds,
	)

	rs := destset.NewResultStore() // memory-only: WithResultStore needs no dir
	if _, _, err := warmRun(before, rs); err != nil {
		t.Fatal(err)
	}
	if st := rs.Stats(); st.Stores != 9 {
		t.Fatalf("first run stored %d cells, want 9", st.Stores)
	}

	baseline, _ := runDefJSONL(t, after, nil, 1)
	got, _ := runDefJSONL(t, after, rs, 1)
	if !bytes.Equal(got, baseline) {
		t.Fatal("incremental rerun diverges from an uncached run of the edited sweep")
	}
	st := rs.Stats()
	if computed := st.Stores - 9; computed != 3 {
		t.Errorf("incremental rerun computed %d cells, want 3 (the changed engine's)", computed)
	}
	if st.MemHits != 6 {
		t.Errorf("incremental rerun served %d cells from the store, want 6", st.MemHits)
	}
}

// warmRun executes def once against rs, without observers.
func warmRun(def destset.SweepDef, rs *destset.ResultStore) (any, *destset.SweepPlan, error) {
	plan, err := def.Plan()
	if err != nil {
		return nil, nil, err
	}
	r, err := def.Runner(destset.WithResultStore(rs), destset.WithParallelism(1))
	if err != nil {
		return nil, nil, err
	}
	res, err := r.Run(context.Background())
	return res, plan, err
}

// TestResultStoreSkipsOpenWorkloads pins the safety rule: cells of
// workloads with a custom Open stream source are never cached — their
// fingerprints do not cover the stream contents — while named-workload
// cells in the same sweep cache as usual.
func TestResultStoreSkipsOpenWorkloads(t *testing.T) {
	params, err := destset.NewWorkload("oltp", 0)
	if err != nil {
		t.Fatal(err)
	}
	workloads := []destset.WorkloadSpec{
		{Name: "oltp", Warm: 500, Measure: 500},
		{
			Name:  "oltp-open",
			Nodes: params.Nodes,
			Warm:  500, Measure: 500,
			Open: func(seed uint64) (destset.Stream, error) {
				return destset.NewWorkloadGenerator(destset.WorkloadSpec{Name: "oltp"}, seed)
			},
		},
	}
	engines := []destset.EngineSpec{{Protocol: destset.ProtocolSnooping}}
	rs := destset.NewResultStore()
	run := func() []destset.RunResult {
		t.Helper()
		res, err := destset.NewRunner(engines, workloads,
			destset.WithResultStore(rs), destset.WithParallelism(1)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	if st := rs.Stats(); st.Stores != 1 {
		t.Fatalf("first run stored %d cells, want 1 (the named workload's only)", st.Stores)
	}
	second := run()
	st := rs.Stats()
	if st.Stores != 1 {
		t.Errorf("rerun stored the Open workload's cell: %d stores, want still 1", st.Stores)
	}
	if st.MemHits != 1 {
		t.Errorf("rerun stats: %+v, want 1 memory hit (the named cell)", st)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("rerun results diverge")
	}
}

// TestResultStoreCellLines pins the raw-record interface the
// distributed coordinator and sweepapi use: StoreCellLines round-trips
// byte-identically through CellRecords/CellLines; a spilled (non-Final)
// trace record serves observation replay but reads as a miss to a
// runner, which upgrades it on compute.
func TestResultStoreCellLines(t *testing.T) {
	def := destset.NewTraceSweepDef(
		[]destset.EngineSpec{{Protocol: destset.ProtocolSnooping}},
		[]destset.WorkloadSpec{{Name: "oltp", Warm: 500, Measure: 500}},
		destset.WithSeeds(1),
		destset.WithInterval(200),
	)
	plan, err := def.Plan()
	if err != nil {
		t.Fatal(err)
	}
	fp := plan.Cell(0).Fingerprint
	stream, _ := runDefJSONL(t, def, nil, 1)

	// The single cell's observation lines: everything after the manifest.
	var lines [][]byte
	for _, line := range bytes.Split(bytes.TrimSpace(stream), []byte("\n"))[1:] {
		lines = append(lines, append([]byte(nil), line...))
	}
	if len(lines) < 2 {
		t.Fatalf("want a multi-observation cell, got %d lines", len(lines))
	}

	rs := destset.NewResultStore()
	if err := rs.StoreCellLines(destset.PlanKindTrace, fp, lines); err != nil {
		t.Fatal(err)
	}
	// The spill is replayable...
	kind, got, ok := rs.CellRecords(fp)
	if !ok || kind != destset.PlanKindTrace {
		t.Fatalf("CellRecords = (%q, %t)", kind, ok)
	}
	if !reflect.DeepEqual(got, lines) {
		t.Fatalf("spilled lines diverge:\n%q\nvs\n%q", got, lines)
	}
	if _, ok := rs.CellLines(destset.PlanKindTiming, fp); ok {
		t.Error("CellLines served a trace record to a timing caller")
	}
	// ...but not runner-servable: the record lacks the engine name.
	if rs.HasCell(destset.PlanKindTrace, fp) {
		t.Error("non-Final spilled record claims to be runner-servable")
	}
	spilled := rs.Stats().Stores // the spill itself counts as one Put
	if _, _, err := warmRun(def, rs); err != nil {
		t.Fatal(err)
	}
	st := rs.Stats()
	if st.Stores != spilled+1 {
		t.Errorf("runner over a non-Final record stored %d cells, want 1 (spills are misses to runners)", st.Stores-spilled)
	}
	if !rs.HasCell(destset.PlanKindTrace, fp) {
		t.Error("computing the cell did not upgrade the record to Final")
	}
	// The upgraded record replays the identical observation stream.
	if _, got, _ := rs.CellRecords(fp); !reflect.DeepEqual(got, lines) {
		t.Error("upgraded record's observation lines diverge from the original stream")
	}

	// Refusals.
	if err := rs.StoreCellLines(destset.PlanKindTrace, "fp-x", nil); err == nil {
		t.Error("StoreCellLines accepted an empty cell")
	}
	if err := rs.StoreCellLines(destset.PlanKindTiming, "fp-x", lines); err == nil || !strings.Contains(err.Error(), "want 1") {
		t.Errorf("StoreCellLines accepted a multi-line timing cell: %v", err)
	}
	if err := rs.StoreCellLines("mystery", "fp-x", lines[:1]); err == nil {
		t.Error("StoreCellLines accepted an unknown kind")
	}
}

// TestSetResultDirArmsSharedStore pins the opt-in rule for the
// process-wide store: runners ignore it until SetResultDir names a
// directory, and consult it afterwards without any explicit option.
func TestSetResultDirArmsSharedStore(t *testing.T) {
	if destset.ResultDir() != "" {
		t.Fatal("shared result store armed at test entry")
	}
	defer func() {
		if err := destset.SetResultDir(""); err != nil {
			t.Fatal(err)
		}
		destset.PurgeResults()
	}()
	def := traceTestDef()
	plan, err := def.Plan()
	if err != nil {
		t.Fatal(err)
	}
	before := destset.ResultStoreStats()
	if _, err := mustRunner(t, def).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if after := destset.ResultStoreStats(); after.Stores != before.Stores {
		t.Fatal("disarmed shared store saw traffic from a plain run")
	}
	if err := destset.SetResultDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if _, err := mustRunner(t, def).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := destset.ResultStoreStats(); st.Stores != before.Stores+uint64(plan.Len()) {
		t.Fatalf("armed shared store stats: %+v, want %d new stores", st, plan.Len())
	}
}

func mustRunner(t *testing.T, def destset.SweepDef) *destset.Runner {
	t.Helper()
	r, err := def.Runner(destset.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	return r
}
