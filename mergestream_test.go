package destset_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"destset"
)

// streamPlan builds the plan the stream-merge tests share.
func streamPlan(t *testing.T, engines []destset.EngineSpec, workloads []destset.WorkloadSpec, opts ...destset.RunnerOption) *destset.SweepPlan {
	t.Helper()
	plan, err := destset.NewRunner(engines, workloads, opts...).Plan()
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestMergeStreamsMatchesMergeObservations is the external-merge
// equivalence pin: round-robin shard files are plan-ordered streams, so
// MergeStreams over them must produce byte-identical output to
// MergeObservations — and so to the unsharded parallelism-1 run.
func TestMergeStreamsMatchesMergeObservations(t *testing.T) {
	engines := []destset.EngineSpec{
		{Protocol: destset.ProtocolSnooping},
		{Protocol: destset.ProtocolDirectory},
		destset.SpecForPolicy(destset.Owner),
	}
	workloads := []destset.WorkloadSpec{
		{Name: "oltp", Warm: 300, Measure: 300},
		{Name: "ocean", Warm: 300, Measure: 300},
	}
	seeds := destset.WithSeeds(3, 4)

	full := shardJSONL(t, engines, workloads, 0, 1, seeds, destset.WithParallelism(1))
	s0 := shardJSONL(t, engines, workloads, 0, 3, seeds)
	s1 := shardJSONL(t, engines, workloads, 1, 3, seeds)
	s2 := shardJSONL(t, engines, workloads, 2, 3, seeds)
	plan := streamPlan(t, engines, workloads, seeds)

	var inMemory bytes.Buffer
	if err := destset.MergeObservations(&inMemory,
		bytes.NewReader(s0.Bytes()), bytes.NewReader(s1.Bytes()), bytes.NewReader(s2.Bytes())); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	if err := plan.MergeStreams(&streamed,
		bytes.NewReader(s0.Bytes()), bytes.NewReader(s1.Bytes()), bytes.NewReader(s2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), inMemory.Bytes()) {
		t.Errorf("MergeStreams output differs from MergeObservations:\n%s\nvs\n%s", streamed.Bytes(), inMemory.Bytes())
	}
	if !bytes.Equal(streamed.Bytes(), full.Bytes()) {
		t.Error("MergeStreams output differs from the unsharded parallelism-1 stream")
	}

	// A single concatenated plan-ordered stream merges identically — the
	// degenerate 1-way merge the coordinator uses for huge range counts.
	var one bytes.Buffer
	if err := plan.MergeStreams(&one, io.MultiReader(
		bytes.NewReader(full.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), full.Bytes()) {
		t.Error("1-way MergeStreams is not the identity")
	}
}

// TestMergeStreamsRefusals pins the streaming validation: out-of-order
// streams, cells spanning two streams, holes, and foreign records are
// errors, never silent mixes.
func TestMergeStreamsRefusals(t *testing.T) {
	engines := []destset.EngineSpec{{Protocol: destset.ProtocolSnooping}, {Protocol: destset.ProtocolDirectory}}
	workloads := []destset.WorkloadSpec{{Name: "oltp", Warm: 200, Measure: 200}}
	full := shardJSONL(t, engines, workloads, 0, 1, destset.WithParallelism(1))
	plan := streamPlan(t, engines, workloads)

	// Split the full stream's records (manifest line dropped) per line.
	lines := strings.Split(strings.TrimSpace(full.String()), "\n")[1:]
	if len(lines) != plan.Len() {
		t.Fatalf("test sweep has %d records, want one per cell (%d)", len(lines), plan.Len())
	}

	var out bytes.Buffer
	check := func(name, wantSub string, parts ...string) {
		t.Helper()
		readers := make([]io.Reader, len(parts))
		for i, p := range parts {
			readers[i] = strings.NewReader(p)
		}
		out.Reset()
		err := plan.MergeStreams(&out, readers...)
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: err = %v, want %q", name, err, wantSub)
		}
	}

	check("no streams", "no streams")
	check("out-of-order stream", "not in plan order", lines[0]+"\n"+lines[1]+"\n"+lines[0]+"\n")
	check("duplicate cell across streams", "span streams", lines[0]+"\n"+lines[1]+"\n", lines[0]+"\n")
	check("hole", "no records", lines[1]+"\n")
	check("trailing hole", "no records", lines[0]+"\n")
	check("foreign record", "not in the plan",
		lines[0]+"\n{\"Engine\":\"snooping\",\"Workload\":\"zzz\",\"Seed\":9}\n")
	check("garbage line", "invalid character", "{not json}\n")
}
